"""Supervised sweep execution (repro.perf.supervisor): retries,
deadlines, pool rebuilds, poison-cell quarantine, checkpoint/resume,
and the fault-injected identity guarantee."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.report_io import _sanitise
from repro.faults.worker import WorkerFaultPlan
from repro.perf import (
    Cell,
    CellCache,
    FAILED_KEY,
    QuarantinedCells,
    Supervisor,
    SupervisorConfig,
    SweepJournal,
    fingerprint,
    quarantined,
    require_ok,
    run_cells,
    set_default_cache,
    set_default_supervisor,
    sweep_id,
)
from repro.obs import Registry


@pytest.fixture(autouse=True)
def _no_process_defaults():
    set_default_cache(None)
    set_default_supervisor(None)
    yield
    set_default_cache(None)
    set_default_supervisor(None)


# Cell functions must be module-level so workers can unpickle them.
def square(x):
    return {"x": x, "sq": x * x}


def boom():
    raise RuntimeError("cell failure")


def flaky(counter, fail_times):
    """Fail the first ``fail_times`` attempts, tracked in a file (each
    attempt runs in a fresh worker; only the filesystem persists)."""
    path = Path(counter)
    n = int(path.read_text()) if path.exists() else 0
    path.write_text(str(n + 1))
    if n < fail_times:
        raise RuntimeError(f"flaky attempt {n}")
    return {"ok": True, "ran": n + 1}


def make_squares(n=6):
    return [Cell(("sq", i), square, {"x": i}) for i in range(n)]


def canon(merged):
    """Identity-comparison form: JSON with the reserved ``_perf``
    quarantine stripped (the idiom of test_parallel_equivalence)."""
    strip = {
        k: ({kk: vv for kk, vv in v.items() if kk != "_perf"}
            if isinstance(v, dict) else v)
        for k, v in merged.items()
    }
    return json.dumps(_sanitise(strip), sort_keys=True)


def cfg(**kw):
    """Fast-polling, zero-backoff config so tests don't sleep."""
    base = dict(backoff_base_s=0.0, backoff_max_s=0.0,
                poll_interval_s=0.02)
    base.update(kw)
    return SupervisorConfig(**base)


def find_plan(n_cells, max_retries, need, max_faulted=2, **rates):
    """Seed-search a fault plan whose attempt-0 schedule injects every
    kind in ``need`` while every cell keeps enough clean attempts that
    no cell can be quarantined — a spontaneous pool break charges every
    in-flight cell one attempt, so later-attempt draws matter even for
    cells the schedule leaves alone."""
    for seed in range(2000):
        plan = WorkerFaultPlan(seed=seed, **rates)
        sched = plan.injections(n_cells)
        if not need <= set(sched.values()):
            continue
        if all(sum(plan.decide(i, a) is not None
                   for a in range(max_retries + 1)) <= max_faulted
               for i in range(n_cells)):
            return plan
    raise AssertionError("no suitable fault seed in search window")


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError, match="max_retries"):
        SupervisorConfig(max_retries=-1)
    with pytest.raises(ValueError, match="cell_timeout_s"):
        SupervisorConfig(cell_timeout_s=0.0)
    with pytest.raises(ValueError, match="floor/cap"):
        SupervisorConfig(timeout_cap_s=-1.0)
    with pytest.raises(ValueError, match="floor_s"):
        SupervisorConfig(timeout_floor_s=10.0, timeout_cap_s=1.0)
    with pytest.raises(ValueError, match="multiplier"):
        SupervisorConfig(timeout_multiplier=0.5)
    with pytest.raises(ValueError, match="grace_factor"):
        SupervisorConfig(grace_factor=-0.1)
    with pytest.raises(ValueError, match="backoff_factor"):
        SupervisorConfig(backoff_factor=0.5)
    with pytest.raises(ValueError, match="poll_interval"):
        SupervisorConfig(poll_interval_s=0.0)
    assert SupervisorConfig(resume=True).journaling
    assert SupervisorConfig(journal=True).journaling
    assert not SupervisorConfig().journaling


# ---------------------------------------------------------------------------
# happy path
# ---------------------------------------------------------------------------
def test_happy_path_identical_to_serial_run_cells():
    cells = make_squares()
    serial = run_cells(cells, jobs=1)
    sup = Supervisor(cfg())
    merged = sup.run(cells, jobs=2)
    assert canon(merged) == canon(serial)
    assert list(merged) == [c.key for c in cells]
    assert sup.stats["completed"] == len(cells)
    assert sup.stats["retries"] == 0
    assert sup.stats["rebuilds"] == 0
    assert sup.stats["quarantined"] == 0


def test_supervised_jobs_one_still_isolated():
    # jobs=1 builds a one-worker pool: isolation is what makes crash
    # containment possible, so even "serial" supervision uses a worker
    sup = Supervisor(cfg())
    merged = sup.run(make_squares(3), jobs=1)
    assert [merged[("sq", i)]["sq"] for i in range(3)] == [0, 1, 4]


def test_jobs_and_key_validation():
    sup = Supervisor(cfg())
    with pytest.raises(ValueError, match="jobs"):
        sup.run(make_squares(2), jobs=0)
    dup = [Cell("same", square, {"x": 1}), Cell("same", square, {"x": 2})]
    with pytest.raises(ValueError, match="duplicate cell key"):
        sup.run(dup)
    assert sup.run([], jobs=3) == {}


def test_counters_reach_obs_registry():
    reg = Registry()
    sup = Supervisor(cfg(), obs=reg)
    sup.run(make_squares(3), jobs=2)
    assert reg.value("supervisor_completed") == 3
    assert reg.value("supervisor_rebuilds") == 0


def test_run_cells_uses_default_and_explicit_supervisor():
    sup = Supervisor(cfg())
    set_default_supervisor(sup)
    run_cells(make_squares(2))
    assert sup.stats["completed"] == 2
    set_default_supervisor(None)
    explicit = Supervisor(cfg())
    run_cells(make_squares(2), supervisor=explicit)
    assert explicit.stats["completed"] == 2
    assert sup.stats["completed"] == 2  # untouched once uninstalled


# ---------------------------------------------------------------------------
# retries and quarantine
# ---------------------------------------------------------------------------
def test_cell_exception_retried_then_succeeds(tmp_path):
    counter = tmp_path / "attempts"
    cells = [Cell("flaky", flaky,
                  {"counter": str(counter), "fail_times": 2})]
    sup = Supervisor(cfg(max_retries=3))
    merged = sup.run(cells)
    assert merged["flaky"]["ok"] is True
    assert merged["flaky"]["ran"] == 3
    assert sup.stats["retries"] == 2
    assert sup.stats["completed"] == 1
    assert sup.stats["quarantined"] == 0


def test_poison_cell_quarantined_with_full_forensics():
    cells = [Cell(("sq", 0), square, {"x": 3}),
             Cell("bad", boom, {}),
             Cell(("sq", 1), square, {"x": 4})]
    sup = Supervisor(cfg(max_retries=2))
    merged = sup.run(cells, jobs=2)
    # the sweep survives: healthy cells complete, order is preserved
    assert list(merged) == [("sq", 0), "bad", ("sq", 1)]
    assert merged[("sq", 0)]["sq"] == 9
    assert merged[("sq", 1)]["sq"] == 16
    failure = merged["bad"][FAILED_KEY]
    assert failure["key"] == repr("bad")
    assert failure["attempts"] == 3  # 1 initial + 2 retries
    assert failure["error"] == "RuntimeError: cell failure"
    assert failure["errors"] == ["RuntimeError: cell failure"] * 3
    assert len(failure["attempt_s"]) == 3
    assert all(t >= 0 for t in failure["attempt_s"])
    assert quarantined(merged) == {"bad": failure}
    assert sup.stats["quarantined"] == 1
    assert sup.stats["retries"] == 2
    assert sup.stats["completed"] == 2


def test_max_retries_zero_quarantines_on_first_failure():
    sup = Supervisor(cfg(max_retries=0))
    merged = sup.run([Cell("bad", boom, {})])
    assert merged["bad"][FAILED_KEY]["attempts"] == 1
    assert sup.stats["retries"] == 0


def test_quarantined_helper_ignores_healthy_results():
    assert quarantined({"a": {"x": 1}, "b": 7, "c": None}) == {}


def test_require_ok_passes_healthy_and_names_poisoned_cells():
    healthy = {"a": {"x": 1}}
    assert require_ok(healthy) is healthy
    sup = Supervisor(cfg(max_retries=0))
    merged = sup.run([Cell(("sq", 0), square, {"x": 2}),
                      Cell("bad", boom, {})])
    with pytest.raises(QuarantinedCells, match="demo sweep") as exc:
        require_ok(merged, context="demo sweep")
    assert "'bad'" in str(exc.value)
    assert "RuntimeError: cell failure" in str(exc.value)
    assert "1 attempt" in str(exc.value)
    assert exc.value.failures == quarantined(merged)


# ---------------------------------------------------------------------------
# worker crashes (BrokenProcessPool) and pool rebuilds
# ---------------------------------------------------------------------------
def test_injected_crash_mid_sweep_rebuilds_and_matches_serial():
    cells = make_squares(8)
    plan = find_plan(len(cells), max_retries=5, need={"crash"},
                     crash_rate=0.3)
    serial = run_cells(cells, jobs=1)
    sup = Supervisor(cfg(max_retries=5, worker_faults=plan))
    merged = sup.run(cells, jobs=2)
    assert canon(merged) == canon(serial)
    assert sup.stats["rebuilds"] >= 1
    assert sup.stats["retries"] >= 1
    assert sup.stats["quarantined"] == 0
    assert sup.stats["completed"] == len(cells)


def test_crash_on_every_attempt_quarantines_not_raises():
    plan = WorkerFaultPlan(crash_rate=1.0, seed=0)
    sup = Supervisor(cfg(max_retries=1, worker_faults=plan))
    merged = sup.run([Cell("doomed", square, {"x": 1})])
    failure = merged["doomed"][FAILED_KEY]
    assert "BrokenProcessPool" in failure["error"]
    assert failure["attempts"] == 2
    assert sup.stats["rebuilds"] == 2
    assert sup.stats["quarantined"] == 1


# ---------------------------------------------------------------------------
# hung workers: deadline watchdog, grace extension, rescheduling
# ---------------------------------------------------------------------------
def test_hung_worker_cancelled_and_rescheduled():
    cells = make_squares(5)
    plan = find_plan(len(cells), max_retries=5, need={"hang"},
                     hang_rate=0.4, hang_s=60.0)
    serial = run_cells(cells, jobs=1)
    sup = Supervisor(cfg(max_retries=5, cell_timeout_s=0.25,
                         worker_faults=plan))
    t0 = time.monotonic()
    merged = sup.run(cells, jobs=2)
    elapsed = time.monotonic() - t0
    # the 60 s hang was cancelled by the watchdog, not waited out
    assert elapsed < 30.0
    assert canon(merged) == canon(serial)
    assert sup.stats["timeouts"] >= 1
    assert sup.stats["deadline_extensions"] >= 1  # one grace, then axed
    assert sup.stats["rebuilds"] >= 1
    assert sup.stats["quarantined"] == 0
    assert sup.stats["completed"] == len(cells)


def test_slow_start_injection_is_survivable():
    cells = make_squares(4)
    plan = WorkerFaultPlan(slow_start_rate=1.0, slow_start_s=0.01)
    sup = Supervisor(cfg(worker_faults=plan))
    merged = sup.run(cells, jobs=2)
    assert canon(merged) == canon(run_cells(cells, jobs=1))
    assert sup.stats["retries"] == 0


# ---------------------------------------------------------------------------
# deadline policy (unit level)
# ---------------------------------------------------------------------------
def test_deadline_adaptive_clamp_and_cap_fallback():
    from repro.perf.supervisor import _CellState

    sup = Supervisor(SupervisorConfig(
        timeout_floor_s=2.0, timeout_cap_s=100.0, timeout_multiplier=8.0))
    st = _CellState(0, Cell("k", square, {"x": 1}), "fp")
    st.submitted_at = 1000.0
    # before any completion: the cap itself arms the watchdog
    assert sup._deadline(st) == (100.0, 1100.0)
    sup._observe(0.01)
    assert sup._deadline(st)[0] == 2.0  # floor clamp
    sup._estimate = 5.0
    assert sup._deadline(st)[0] == 40.0  # 8 * estimate
    sup._estimate = 1000.0
    assert sup._deadline(st)[0] == 100.0  # cap clamp


def test_timeout_kill_escalates_budget_past_cap():
    from repro.perf.supervisor import _CellState

    sup = Supervisor(SupervisorConfig(cell_timeout_s=1.0))
    st = _CellState(0, Cell("k", square, {"x": 1}), "fp")
    assert sup._deadline(st)[0] == 1.0
    st.timeout_kills = 2
    # a merely-slow cell converges to a budget it fits in
    assert sup._deadline(st)[0] == 4.0


def test_cost_estimate_is_ema():
    sup = Supervisor(SupervisorConfig())
    sup._observe(1.0)
    assert sup._estimate == 1.0
    sup._observe(2.0)
    assert sup._estimate == pytest.approx(0.7 * 1.0 + 0.3 * 2.0)


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------
def test_journal_written_and_resume_skips_completed(tmp_path):
    cells = make_squares(5)
    first = Supervisor(cfg(journal=True, journal_dir=tmp_path))
    merged = first.run(cells, jobs=2)
    prints = [fingerprint(c.fn, c.kwargs) for c in cells]
    journal = SweepJournal(sweep_id(prints), root=tmp_path)
    assert journal.completed() == set(prints)

    again = Supervisor(cfg(resume=True, journal_dir=tmp_path))
    resumed = again.run(cells, jobs=2)
    assert again.stats["resumed"] == len(cells)
    assert again.stats["completed"] == 0
    assert canon(resumed) == canon(merged)
    # resumed results are served from the store, annotated like cache hits
    assert resumed[("sq", 0)]["_perf"]["cache"] == "hit"


def test_resume_reexecutes_failed_and_missing_cells(tmp_path):
    cells = [Cell(("sq", 0), square, {"x": 2}), Cell("bad", boom, {})]
    first = Supervisor(cfg(journal=True, journal_dir=tmp_path,
                           max_retries=0))
    first.run(cells)
    # quarantined cells journal as "failed": a resume retries them (a
    # crashed host is exactly when the failure may not be the cell's)
    again = Supervisor(cfg(resume=True, journal_dir=tmp_path,
                           max_retries=0))
    merged = again.run(cells)
    assert again.stats["resumed"] == 1
    assert again.stats["quarantined"] == 1
    assert FAILED_KEY in merged["bad"]


def test_resume_with_vanished_store_reexecutes(tmp_path):
    cells = make_squares(3)
    prints = [fingerprint(c.fn, c.kwargs) for c in cells]
    first = Supervisor(cfg(journal=True, journal_dir=tmp_path))
    first.run(cells)
    store = CellCache(root=tmp_path / f"{sweep_id(prints)}.store")
    assert store.clear() == 3  # simulate a lost result store
    again = Supervisor(cfg(resume=True, journal_dir=tmp_path))
    merged = again.run(cells)
    # the journal is an index, the store is the source of truth
    assert again.stats["resumed"] == 0
    assert again.stats["completed"] == 3
    assert merged[("sq", 2)]["sq"] == 4


def test_active_cache_is_the_resume_store(tmp_path):
    cells = make_squares(4)
    cache = CellCache(root=tmp_path / "cellcache")
    first = Supervisor(cfg(journal=True, journal_dir=tmp_path / "j"))
    first.run(cells, jobs=2, cache=cache)
    assert cache.stores == 4
    # no <sweep>.store directory: the cache *is* the store (composition)
    assert not list((tmp_path / "j").glob("*.store"))
    again = Supervisor(cfg(resume=True, journal_dir=tmp_path / "j"))
    again.run(cells, cache=cache)
    assert again.stats["resumed"] == 4


def test_cache_hits_are_journaled_for_later_resume(tmp_path):
    cells = make_squares(3)
    prints = [fingerprint(c.fn, c.kwargs) for c in cells]
    cache = CellCache(root=tmp_path / "cellcache")
    run_cells(cells, cache=cache)  # warm the cache, no journal yet
    sup = Supervisor(cfg(journal=True, journal_dir=tmp_path / "j"))
    sup.run(cells, cache=cache)
    journal = SweepJournal(sweep_id(prints), root=tmp_path / "j")
    entries = journal.load()
    assert journal.completed() == set(prints)
    # served from cache, never executed: journaled with attempts=0
    assert all(e["attempts"] == 0 for e in entries.values())
    assert sup.stats["completed"] == 0


# ---------------------------------------------------------------------------
# kill-then-resume integration: only incomplete cells re-execute
# ---------------------------------------------------------------------------
def test_sigkill_then_resume_reexecutes_only_incomplete(tmp_path):
    from tests.perf import _resume_cells as rc

    n, delay = 5, 0.3
    jdir = tmp_path / "journal"
    pings = tmp_path / "pings"
    pings.mkdir()
    repo = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo / "src"), str(repo)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    child = subprocess.Popen(
        [sys.executable, "-c",
         "from tests.perf import _resume_cells as rc; "
         f"rc.run_sweep({str(jdir)!r}, jobs=1, delay_s={delay}, "
         f"n={n}, ping_dir={str(pings)!r})"],
        cwd=str(repo), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    cells = rc.make_cells(n, delay, ping_dir=str(pings))
    prints = [fingerprint(c.fn, c.kwargs) for c in cells]
    journal = SweepJournal(sweep_id(prints), root=jdir)
    try:
        # wait until at least two cells are journaled, then pull the plug
        deadline = time.monotonic() + 60.0
        while len(journal.completed()) < 2:
            assert child.poll() is None, "child sweep exited early"
            assert time.monotonic() < deadline, "child sweep too slow"
            time.sleep(0.02)
    finally:
        child.send_signal(signal.SIGKILL)
        child.wait()
    time.sleep(0.8)  # let any orphaned worker drain and exit

    done_before = journal.completed()
    assert 0 < len(done_before) < n
    for ping in pings.glob("*.ping"):
        ping.unlink()

    merged, sup = rc.run_sweep(str(jdir), jobs=1, delay_s=delay, n=n,
                               ping_dir=str(pings))
    # only the incomplete cells re-executed...
    assert sup.stats["resumed"] == len(done_before)
    assert sup.stats["completed"] == n - len(done_before)
    reran = {p.stem for p in pings.glob("*.ping")}
    expected_rerun = {cells[i].kwargs["tag"] for i in range(n)
                      if prints[i] not in done_before}
    assert reran == expected_rerun
    # ...and the merged record is identical to an uninterrupted serial
    # run of the same sweep
    serial = run_cells(rc.make_cells(n, delay, ping_dir=""), jobs=1)
    assert canon(merged) == canon(serial)
    assert quarantined(merged) == {}
    assert journal.completed() == set(prints)


# ---------------------------------------------------------------------------
# acceptance: chaos sweep byte-identical to fault-free serial run
# ---------------------------------------------------------------------------
def find_chaos_plan(n_cells):
    """Seed-search a plan with at least one crash *and* one hang whose
    retry draws are all clean.  The chaos acceptance test runs it at
    ``jobs=1`` on purpose: with a single slot exactly one cell is ever
    in flight, so a crash-triggered pool rebuild can never catch a
    concurrently hanging worker as collateral (which would requeue the
    hang before the deadline watchdog fires and leave the watchdog
    path untested) and collateral attempt-charging cannot occur — the
    crash/timeout/rebuild verdicts below are timing-independent even
    on a heavily loaded host."""
    for seed in range(20000):
        plan = WorkerFaultPlan(crash_rate=0.15, hang_rate=0.1,
                               hang_s=60.0, seed=seed)
        sched = plan.injections(n_cells)
        kinds = set(sched.values())
        if not {"crash", "hang"} <= kinds:
            continue
        if any(plan.decide(i, a) is not None
               for i in sched for a in (1, 2)):
            continue
        return plan
    raise AssertionError("no suitable chaos seed in search window")


def test_chaos_sweep_identical_to_fault_free_serial():
    cells = make_squares(10)
    plan = find_chaos_plan(len(cells))
    serial = run_cells(cells, jobs=1)
    sup = Supervisor(cfg(max_retries=3, cell_timeout_s=0.25,
                         worker_faults=plan))
    merged = sup.run(cells, jobs=1)
    assert canon(merged) == canon(serial)
    assert sup.stats["quarantined"] == 0
    # every crash breaks the sole-worker pool and every hang is killed
    # by the watchdog, so both chaos paths are provably exercised
    sched = plan.injections(len(cells))
    n_crashes = sum(1 for k in sched.values() if k == "crash")
    n_hangs = sum(1 for k in sched.values() if k == "hang")
    assert sup.stats["rebuilds"] >= n_crashes + n_hangs >= 2
    assert sup.stats["timeouts"] >= n_hangs >= 1
    assert sup.stats["completed"] == len(cells)
