"""Content-addressed cell result cache: fingerprints, hit/miss flow,
``run_cells`` integration, and the cached-vs-fresh identity guarantee."""

import pickle

import numpy as np
import pytest

from repro.experiments.runner import GangConfig, run_cell
from repro.perf import (
    Cell,
    CellCache,
    code_version,
    fingerprint,
    get_default_cache,
    run_cells,
    set_default_cache,
)
from repro.obs import Registry


@pytest.fixture(autouse=True)
def _no_default_cache():
    set_default_cache(None)
    yield
    set_default_cache(None)


@pytest.fixture
def cache(tmp_path):
    return CellCache(root=tmp_path / "cellcache")


def cell_fn(a=0, b=0):
    return {"sum": a + b, "pair": (a, b)}


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------
def test_fingerprint_stable_across_calls():
    kw = {"cfg": GangConfig("LU", "C", nprocs=2, scale=0.05), "x": 1}
    assert fingerprint(cell_fn, kw) == fingerprint(cell_fn, dict(kw))


def test_fingerprint_sensitive_to_kwargs():
    base = fingerprint(cell_fn, {"a": 1})
    assert fingerprint(cell_fn, {"a": 2}) != base
    assert fingerprint(cell_fn, {"b": 1}) != base
    # type distinctions: 1 / 1.0 / True / "1" must not collide
    prints = {
        fingerprint(cell_fn, {"a": v}) for v in (1, 1.0, True, "1")
    }
    assert len(prints) == 4


def test_fingerprint_sensitive_to_function_identity():
    assert fingerprint(cell_fn, {}) != fingerprint(run_cell, {})


def test_fingerprint_dataclass_fields_matter():
    a = GangConfig("LU", "C", nprocs=2, seed=1, scale=0.05)
    b = GangConfig("LU", "C", nprocs=2, seed=2, scale=0.05)
    assert (fingerprint(cell_fn, {"cfg": a})
            != fingerprint(cell_fn, {"cfg": b}))


def test_fingerprint_dict_order_canonical():
    # same mapping, different insertion order → same fingerprint
    assert (fingerprint(cell_fn, {"a": 1, "b": 2})
            == fingerprint(cell_fn, {"b": 2, "a": 1}))


def test_fingerprint_ndarray_supported():
    fp1 = fingerprint(cell_fn, {"pages": np.arange(4)})
    fp2 = fingerprint(cell_fn, {"pages": np.arange(5)})
    assert fp1 != fp2


def test_unfingerprintable_kwargs_raise():
    with pytest.raises(TypeError, match="unfingerprintable"):
        fingerprint(cell_fn, {"bad": object()})


def test_code_version_is_cached_and_hexdigest():
    v = code_version()
    assert v == code_version()
    assert len(v) == 64 and int(v, 16) >= 0


# ---------------------------------------------------------------------------
# hit / miss flow
# ---------------------------------------------------------------------------
def test_get_miss_then_put_then_hit(cache):
    fp = fingerprint(cell_fn, {"a": 1})
    assert cache.get(fp) is None
    assert (cache.hits, cache.misses, cache.stores) == (0, 1, 0)
    cache.put(fp, {"sum": 1}, label="demo")
    hit = cache.get(fp)
    assert hit["sum"] == 1
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)


def test_hit_is_annotated_in_perf_quarantine(cache):
    fp = fingerprint(cell_fn, {"a": 2})
    cache.put(fp, {"sum": 2})
    hit = cache.get(fp)
    assert hit["_perf"]["cache"] == "hit"
    # non-dict results are returned untouched
    fp2 = fingerprint(cell_fn, {"a": 3})
    cache.put(fp2, [1, 2, 3])
    assert cache.get(fp2) == [1, 2, 3]


def test_corrupt_entry_treated_as_miss(cache):
    fp = fingerprint(cell_fn, {"a": 4})
    cache.put(fp, {"sum": 4})
    cache._path(fp).write_bytes(b"not a pickle")
    assert cache.get(fp) is None
    assert cache.misses == 1


def test_corrupt_entry_deleted_so_slot_can_heal(cache):
    fp = fingerprint(cell_fn, {"a": 7})
    cache.put(fp, {"sum": 7})
    cache._path(fp).write_bytes(b"not a pickle")
    assert cache.get(fp) is None
    # the bad pickle is gone, not left to re-parse on every lookup
    assert not cache._path(fp).exists()
    assert cache.corrupt == 1
    assert cache.stats()["corrupt"] == 1
    # the miss path stores a fresh result over the healed slot
    cache.put(fp, {"sum": 7})
    assert cache.get(fp)["sum"] == 7
    assert cache.corrupt == 1  # no further corruption seen


def test_truncated_pickle_is_corrupt_and_deleted(cache):
    fp = fingerprint(cell_fn, {"a": 8})
    cache.put(fp, {"sum": 8})
    blob = cache._path(fp).read_bytes()
    cache._path(fp).write_bytes(blob[: len(blob) // 2])
    assert cache.get(fp) is None
    assert not cache._path(fp).exists()
    assert cache.corrupt == 1


def test_wrong_shape_entry_is_corrupt_and_deleted(cache):
    fp = fingerprint(cell_fn, {"a": 9})
    cache.root.mkdir(parents=True, exist_ok=True)
    with cache._path(fp).open("wb") as fh:  # valid pickle, wrong shape
        pickle.dump([1, 2, 3], fh)
    assert cache.get(fp) is None
    assert not cache._path(fp).exists()
    assert cache.corrupt == 1


def test_transient_io_error_is_plain_miss_not_corruption(cache):
    # an unreadable-but-present entry may be fine next time: degrade to
    # a miss without deleting anything
    fp = fingerprint(cell_fn, {"a": 10})
    cache.root.mkdir(parents=True, exist_ok=True)
    cache._path(fp).mkdir()  # open("rb") raises IsADirectoryError
    assert cache.get(fp) is None
    assert cache.misses == 1
    assert cache.corrupt == 0
    assert cache._path(fp).exists()


def test_corrupt_counter_reaches_obs_registry(tmp_path):
    reg = Registry()
    cache = CellCache(root=tmp_path, obs=reg)
    fp = fingerprint(cell_fn, {"a": 11})
    cache._path(fp).parent.mkdir(parents=True, exist_ok=True)
    cache._path(fp).write_bytes(b"garbage")
    cache.get(fp)
    assert reg.value("cellcache_corrupt") == 1
    assert reg.value("cellcache_misses") == 1


def test_stats_and_clear(cache):
    for a in range(3):
        cache.put(fingerprint(cell_fn, {"a": a}), {"sum": a})
    stats = cache.stats()
    assert stats["entries"] == 3
    assert stats["bytes"] > 0
    assert stats["stores"] == 3
    assert cache.clear() == 3
    assert cache.entries() == []
    assert cache.stats()["entries"] == 0
    assert cache.clear() == 0  # idempotent on an empty/missing root


def test_counters_reach_obs_registry(tmp_path):
    reg = Registry()
    cache = CellCache(root=tmp_path, obs=reg)
    fp = fingerprint(cell_fn, {"a": 5})
    cache.get(fp)
    cache.put(fp, {"sum": 5})
    cache.get(fp)
    assert reg.value("cellcache_misses") == 1
    assert reg.value("cellcache_hits") == 1
    assert reg.value("cellcache_stores") == 1


def test_put_is_atomic_no_tmp_left_behind(cache):
    fp = fingerprint(cell_fn, {"a": 6})
    cache.put(fp, {"sum": 6})
    assert not list(cache.root.glob("*.tmp"))
    # stored entry round-trips through pickle with its label
    with cache._path(fp).open("rb") as fh:
        entry = pickle.load(fh)
    assert entry["result"] == {"sum": 6}


# ---------------------------------------------------------------------------
# run_cells integration
# ---------------------------------------------------------------------------
def make_cells():
    return [
        Cell(key=("a", i), fn=cell_fn, kwargs={"a": i, "b": 10})
        for i in range(4)
    ]


def test_run_cells_explicit_cache_cold_then_warm(cache):
    cold = run_cells(make_cells(), cache=cache)
    assert cache.stores == 4 and cache.hits == 0
    warm = run_cells(make_cells(), cache=cache)
    assert cache.hits == 4 and cache.stores == 4
    for key in cold:
        strip = lambda d: {k: v for k, v in d.items() if k != "_perf"}
        assert strip(warm[key]) == strip(cold[key])
        assert warm[key]["pair"] == cold[key]["pair"]  # tuple, not list
        assert warm[key]["_perf"]["cache"] == "hit"


def test_run_cells_partial_hits_merge_in_declaration_order(cache):
    run_cells(make_cells()[:2], cache=cache)
    out = run_cells(make_cells(), cache=cache)
    assert list(out) == [("a", i) for i in range(4)]
    assert cache.hits == 2 and cache.stores == 4
    assert [out[k]["sum"] for k in out] == [10, 11, 12, 13]


def test_run_cells_uses_process_default_cache(cache):
    set_default_cache(cache)
    assert get_default_cache() is cache
    run_cells(make_cells())
    run_cells(make_cells())
    assert cache.hits == 4
    set_default_cache(None)
    run_cells(make_cells())
    assert cache.hits == 4  # untouched once uninstalled


def test_run_cells_without_cache_never_touches_disk(tmp_path):
    out = run_cells(make_cells(), cache=None)
    assert out[("a", 0)]["sum"] == 10
    assert not (tmp_path / "cellcache").exists()


def test_cached_simulation_cell_identical_to_fresh(cache):
    cfg = GangConfig("LU", "C", nprocs=2, policy="lru", seed=1, scale=0.05)
    cells = [Cell(key="lru", fn=run_cell, kwargs={"cfg": cfg})]
    fresh = run_cells(cells, cache=cache)["lru"]
    cached = run_cells(cells, cache=cache)["lru"]
    assert cached["_perf"]["cache"] == "hit"
    strip = lambda d: {k: v for k, v in d.items() if k != "_perf"}
    assert strip(cached) == strip(fresh)
