"""Tests for the two-level cluster topology."""

import pytest

from repro.cluster import Barrier
from repro.cluster.topology import TwoLevelTopology
from repro.sim import Environment


def test_validation():
    with pytest.raises(ValueError):
        TwoLevelTopology(0, 4)
    with pytest.raises(ValueError):
        TwoLevelTopology(4, 0)
    with pytest.raises(ValueError):
        TwoLevelTopology(4, 2, intra_latency_s=1e-3, inter_latency_s=1e-4)
    with pytest.raises(ValueError):
        TwoLevelTopology(4, 2, bandwidth_bytes_s=0)


def test_rack_assignment():
    t = TwoLevelTopology(8, rack_size=4)
    assert t.nracks == 2
    assert t.rack_of(0) == 0
    assert t.rack_of(3) == 0
    assert t.rack_of(4) == 1
    with pytest.raises(ValueError):
        t.rack_of(8)


def test_pair_latency():
    t = TwoLevelTopology(8, 4, intra_latency_s=1e-4, inter_latency_s=4e-4)
    assert t.pair_latency_s(0, 0) == 0.0
    assert t.pair_latency_s(0, 3) == 1e-4
    assert t.pair_latency_s(0, 4) == 4e-4


def test_barrier_cost_splits_rounds():
    t = TwoLevelTopology(8, 4, intra_latency_s=1e-4, inter_latency_s=4e-4,
                         overhead_s=0.0)
    # 3 rounds: strides 1,2 intra (< rack_size 4), stride 4 crosses
    assert t.barrier_s(8) == pytest.approx(2 * 1e-4 + 4e-4)


def test_single_rack_all_intra():
    t = TwoLevelTopology(4, 8, intra_latency_s=1e-4, inter_latency_s=4e-4,
                         overhead_s=0.0)
    assert t.nracks == 1
    assert t.barrier_s(4) == pytest.approx(2 * 1e-4)
    assert t.barrier_s(1) == 0.0


def test_transfer_uses_worst_link():
    flat = TwoLevelTopology(4, 8, intra_latency_s=1e-4,
                            inter_latency_s=4e-4,
                            bandwidth_bytes_s=1e6)
    split = TwoLevelTopology(8, 4, intra_latency_s=1e-4,
                             inter_latency_s=4e-4,
                             bandwidth_bytes_s=1e6)
    assert flat.transfer_s(1e6) == pytest.approx(1e-4 + 1.0)
    assert split.transfer_s(1e6) == pytest.approx(4e-4 + 1.0)
    assert split.transfer_s(0) == 0.0


def test_topology_drives_a_barrier():
    """TwoLevelTopology is NetworkParams-compatible for Barrier."""
    env = Environment()
    topo = TwoLevelTopology(4, 2, intra_latency_s=1e-3,
                            inter_latency_s=5e-3, overhead_s=0.0)
    b = Barrier(env, 4, network=topo)
    released = []

    def rank(env, r):
        yield from b.wait(r)
        released.append(env.now)

    for r in range(4):
        env.process(rank(env, r))
    env.run()
    # 2 rounds: stride 1 intra, stride 2 crosses racks
    assert released == [pytest.approx(1e-3 + 5e-3)] * 4


def test_cross_rack_barrier_costs_more_than_flat():
    one_rack = TwoLevelTopology(16, 16, overhead_s=0.0)
    four_racks = TwoLevelTopology(16, 4, overhead_s=0.0)
    assert four_racks.barrier_s(16) > one_rack.barrier_s(16)
