"""Unit tests for the network latency model."""

import pytest

from repro.cluster import NetworkParams


def test_defaults_validate():
    p = NetworkParams()
    assert p.latency_s > 0


def test_validation():
    with pytest.raises(ValueError):
        NetworkParams(latency_s=-1)
    with pytest.raises(ValueError):
        NetworkParams(bandwidth_bytes_s=0)


def test_barrier_single_rank_free():
    assert NetworkParams().barrier_s(1) == 0.0


def test_barrier_grows_logarithmically():
    p = NetworkParams(latency_s=1e-4, overhead_s=0.0)
    assert p.barrier_s(2) == pytest.approx(1e-4)
    assert p.barrier_s(4) == pytest.approx(2e-4)
    assert p.barrier_s(8) == pytest.approx(3e-4)
    assert p.barrier_s(5) == pytest.approx(3e-4)  # ceil(log2 5) = 3


def test_transfer_time():
    p = NetworkParams(latency_s=1e-4, bandwidth_bytes_s=1e6)
    assert p.transfer_s(0) == 0.0
    assert p.transfer_s(1e6) == pytest.approx(1e-4 + 1.0)
    with pytest.raises(ValueError):
        p.transfer_s(-1)
