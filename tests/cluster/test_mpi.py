"""Unit tests for the MPI-style barrier."""

import pytest

from repro.cluster import Barrier, NetworkParams
from repro.sim import Environment


def net(lat=0.001):
    return NetworkParams(latency_s=lat, overhead_s=0.0)


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Barrier(env, 0)


def test_all_ranks_released_together():
    env = Environment()
    b = Barrier(env, 3, net())
    release_times = {}

    def rank(env, b, r, arrive_delay):
        yield env.timeout(arrive_delay)
        yield from b.wait(r)
        release_times[r] = env.now

    for r, d in enumerate([1.0, 2.0, 5.0]):
        env.process(rank(env, b, r, d))
    env.run()
    # everyone leaves when the slowest arrived plus barrier cost
    expected = 5.0 + net().barrier_s(3)
    assert all(t == pytest.approx(expected) for t in release_times.values())
    assert b.rounds_completed == 1


def test_barrier_is_reusable_across_generations():
    env = Environment()
    b = Barrier(env, 2, net())
    log = []

    def rank(env, b, r, delays):
        for d in delays:
            yield env.timeout(d)
            yield from b.wait(r)
            log.append((r, round(env.now, 6)))

    env.process(rank(env, b, 0, [1.0, 1.0]))
    env.process(rank(env, b, 1, [2.0, 3.0]))
    env.run()
    assert b.rounds_completed == 2
    # round 1 releases at 2.0 + cost; round 2 at 5.0 + 2*cost
    c = net().barrier_s(2)
    times = sorted(set(t for _, t in log))
    assert times[0] == pytest.approx(2.0 + c)
    assert times[1] == pytest.approx(5.0 + 2 * c, abs=1e-9)


def test_payload_delays_release_by_maximum():
    env = Environment()
    b = Barrier(env, 2, net(lat=0.0))
    out = {}

    def rank(env, b, r, payload):
        yield from b.wait(r, payload_s=payload)
        out[r] = env.now

    env.process(rank(env, b, 0, 1.0))
    env.process(rank(env, b, 1, 3.0))
    env.run()
    assert out[0] == pytest.approx(3.0)
    assert out[1] == pytest.approx(3.0)


def test_rank_out_of_range():
    env = Environment()
    b = Barrier(env, 2)

    def bad(env, b):
        yield from b.wait(5)

    env.process(bad(env, b))
    with pytest.raises(ValueError):
        env.run()


def test_double_arrival_same_generation_rejected():
    env = Environment()
    b = Barrier(env, 2)

    def bad(env, b):
        # arrive twice without the other rank ever showing up
        gen1 = b.wait(0)
        next(gen1, None)  # first arrival parks on the release event
        yield from b.wait(0)

    env.process(bad(env, b))
    with pytest.raises(RuntimeError, match="arrived twice"):
        env.run()


def test_single_rank_barrier_is_instant():
    env = Environment()
    b = Barrier(env, 1, net())

    def rank(env, b):
        yield env.timeout(1.0)
        yield from b.wait(0)
        return env.now

    p = env.process(rank(env, b))
    assert env.run(until=p) == 1.0


def test_stalled_rank_blocks_others():
    """The §4.2 coupling: one slow (e.g. paging) rank holds the gang."""
    env = Environment()
    b = Barrier(env, 4, net(lat=0.0))
    waits = {}

    def rank(env, b, r, delay):
        t0 = env.now
        yield env.timeout(delay)
        yield from b.wait(r)
        waits[r] = env.now - t0

    for r in range(3):
        env.process(rank(env, b, r, 0.1))
    env.process(rank(env, b, 3, 60.0))  # the paging straggler
    env.run()
    assert all(w == pytest.approx(60.0) for w in waits.values())
    assert b.total_sync_s == pytest.approx(3 * 59.9, rel=1e-6)
