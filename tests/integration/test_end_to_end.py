"""Cross-module integration tests at small scale."""

import numpy as np
import pytest

from repro.cluster import Node
from repro.core import PAPER_POLICIES
from repro.gang import BatchScheduler, GangScheduler, Job
from repro.sim import Environment, RngStreams
from repro.workloads import make_npb


def build(policy="lru", nnodes=1, memory_mb=12.0, seed=3, bench="LU",
          klass="A", footprint=1400, cpu=2e-3, iters=3):
    env = Environment()
    nodes = [Node.build(env, f"n{i}", memory_mb, policy)
             for i in range(nnodes)]
    rngs = RngStreams(seed)
    jobs = []
    for j in range(2):
        wls = []
        for _ in nodes:
            w = make_npb(bench, klass, nnodes if nnodes > 1 else 1,
                         max_phase_pages=512)
            w.footprint_pages = footprint
            w.cpu_it_s = cpu * footprint
            w.iterations = iters
            wls.append(w)
        jobs.append(Job(f"{bench}#{j}", nodes, wls, rngs.spawn(f"j{j}")))
    return env, nodes, jobs


def test_every_paper_policy_completes_and_conserves_memory():
    for policy in PAPER_POLICIES:
        env, nodes, jobs = build(policy)
        GangScheduler(env, jobs, quantum_s=4.0).start()
        env.run()
        for job in jobs:
            assert job.finished, policy
        for node in nodes:
            assert node.vmm.frames.used == 0, policy
            assert node.vmm.swap.used_slots == 0, policy
            node.vmm.check_invariants()


def test_full_determinism_across_runs():
    def fingerprint():
        env, nodes, jobs = build("so/ao/ai/bg")
        sched = GangScheduler(env, jobs, quantum_s=4.0)
        sched.start()
        env.run()
        return (
            tuple(j.completed_at for j in jobs),
            nodes[0].disk.total_requests,
            nodes[0].disk.total_seeks,
            tuple(sorted(nodes[0].vmm.stats.snapshot().items())),
            len(sched.switches),
        )

    assert fingerprint() == fingerprint()


def test_batch_is_lower_bound_for_gang():
    env_b, _, jobs_b = build("lru")
    BatchScheduler(env_b, jobs_b).start()
    env_b.run()
    batch = max(j.completed_at for j in jobs_b)

    env_g, _, jobs_g = build("lru")
    GangScheduler(env_g, jobs_g, quantum_s=4.0).start()
    env_g.run()
    gang = max(j.completed_at for j in jobs_g)
    assert gang >= batch * 0.999


def test_policy_ladder_improves_under_pressure():
    """lru -> so -> so/ao/ai/bg should not get worse step to step (small
    tolerance for scheduling noise)."""
    results = {}
    for policy in ("lru", "so", "so/ao/ai/bg"):
        env, nodes, jobs = build(policy)
        GangScheduler(env, jobs, quantum_s=4.0).start()
        env.run()
        results[policy] = max(j.completed_at for j in jobs)
    assert results["so"] <= results["lru"] * 1.05
    assert results["so/ao/ai/bg"] <= results["lru"] * 1.05


def test_parallel_ranks_advance_in_lockstep():
    env, nodes, jobs = build("lru", nnodes=2, memory_mb=12.0)
    GangScheduler(env, jobs, quantum_s=4.0).start()
    env.run()
    for job in jobs:
        finishes = [p.finished_at for p in job.processes]
        # barrier coupling keeps ranks within one phase of each other
        assert max(finishes) - min(finishes) < 4.0
        assert job.barrier.rounds_completed > 0


def test_stopped_job_consumes_no_cpu():
    env, nodes, jobs = build("lru")
    sched = GangScheduler(env, jobs, quantum_s=4.0)
    sched.start()
    env.run()
    for job in jobs:
        for proc in job.processes:
            # CPU consumed equals the workload's declared compute
            expected = sum(
                ph.cpu_s for ph in proc.workload.phases(
                    np.random.default_rng(0))
            )
            assert proc.control.cpu_consumed_s == pytest.approx(
                expected, rel=1e-6
            )


def test_working_set_estimates_converge_to_footprint():
    env, nodes, jobs = build("so/ao")
    sched = GangScheduler(env, jobs, quantum_s=4.0)
    sched.start()
    env.run(until=10.0)
    ap = nodes[0].adaptive
    for job in jobs:
        pid = job.processes[0].pid
        if pid in nodes[0].vmm.tables:
            est = ap.working_set_estimate(pid)
            assert est > 0


def test_job_exit_mid_schedule_frees_memory_for_survivor():
    env, nodes, jobs = build("lru", iters=2)
    # make job 0 much shorter
    for p in jobs[0].processes:
        p.workload.iterations = 1
    GangScheduler(env, jobs, quantum_s=4.0).start()
    env.run()
    assert jobs[0].completed_at < jobs[1].completed_at
    assert nodes[0].vmm.frames.used == 0
