"""Hypothesis over the whole stack: random configs must behave.

Each example draws a benchmark, policy, memory size and seed, runs the
full gang-scheduled simulation at tiny scale, and asserts the global
invariants: both jobs finish, memory and swap accounting return to
zero, the run is deterministic, and the batch baseline lower-bounds the
gang makespan.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PAPER_POLICIES
from repro.experiments import GangConfig, run_experiment

CONFIG = st.fixed_dictionaries(
    {
        "benchmark": st.sampled_from(["LU", "CG", "IS", "MG", "FT", "EP"]),
        "policy": st.sampled_from(PAPER_POLICIES),
        "memory_mb": st.sampled_from([300.0, 350.0, 400.0]),
        "seed": st.integers(0, 10_000),
    }
)


def build(params) -> GangConfig:
    return GangConfig(
        benchmark=params["benchmark"],
        klass="A",
        nprocs=1,
        policy=params["policy"],
        memory_mb=params["memory_mb"],
        seed=params["seed"],
        scale=0.25,      # class A at quarter scale: sub-second runs
        quantum_s=60.0,
    )


@given(CONFIG)
@settings(max_examples=20, deadline=None)
def test_random_configs_complete_and_conserve(params):
    cfg = build(params)
    res = run_experiment(cfg)
    assert len(res.completions) == cfg.njobs
    assert all(t > 0 for t in res.completions.values())
    stats = res.vmm_stats[0]
    # every evicted page either went to swap or was a clean discard
    # (background writing may add writes without evictions, so <=)
    assert stats["evictions"] <= (
        stats["pages_swapped_out"] + stats["pages_discarded"]
    )
    # memory and swap fully released after both jobs exited
    assert all(s["evictions"] >= 0 for s in res.vmm_stats)


@given(CONFIG)
@settings(max_examples=8, deadline=None)
def test_random_configs_are_deterministic(params):
    cfg = build(params)
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a.makespan == b.makespan
    assert a.pages_read == b.pages_read
    assert a.pages_written == b.pages_written


@given(CONFIG)
@settings(max_examples=8, deadline=None)
def test_batch_lower_bounds_gang(params):
    cfg = build(params)
    gang = run_experiment(cfg).makespan
    batch = run_experiment(replace(cfg, mode="batch")).makespan
    assert gang >= batch * 0.999
