"""Failure-injection tests: exhaustion, interruption and teardown paths."""

import numpy as np
import pytest

from repro.cluster import Node
from repro.core import AdaptivePaging, BackgroundWriter
from repro.disk import Disk, DiskParams, SwapFullError
from repro.mem import (
    MemoryParams,
    OutOfFramesError,
    VirtualMemoryManager,
)
from repro.sim import Environment, Interrupt


def drive(env, gen):
    def w():
        yield from gen
    p = env.process(w())
    env.run(until=p)


def test_swap_exhaustion_surfaces_as_swap_full():
    """An undersized swap area fails loudly, not silently."""
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(
        env,
        MemoryParams(total_frames=64, swap_slots=16),
        disk,
    )
    vmm.register_process(1, 256)

    def churn():
        yield from vmm.touch(1, np.arange(50), dirty=True)
        yield from vmm.touch(1, np.arange(50, 100), dirty=True)
        yield from vmm.touch(1, np.arange(100, 150), dirty=True)

    env.process(churn())
    with pytest.raises(SwapFullError):
        env.run()


def test_out_of_frames_when_everything_protected():
    """If a demand cannot be satisfied because all resident pages belong
    to in-flight faults, the VMM raises rather than livelocking."""
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(env, MemoryParams(total_frames=64), disk)
    vmm.register_process(1, 128)
    vmm.register_process(2, 128)

    def p1():
        # claims nearly all frames and stays in flight via its demand
        yield from vmm.touch(1, np.arange(58), dirty=True)
        # hold the pages hot so reclaim cannot take them while p2 runs
        yield env.timeout(100.0)

    def p2():
        yield env.timeout(1.0)
        yield from vmm.touch(2, np.arange(58), dirty=True)

    env.process(p1())
    env.process(p2())
    # p2 CAN evict p1's pages (not protected once p1's touch finished),
    # so this configuration must complete...
    env.run()
    vmm.check_invariants()

    # ...but an oversized single demand must be rejected up front
    vmm2 = VirtualMemoryManager(env, MemoryParams(total_frames=64), disk)
    vmm2.register_process(1, 256)
    with pytest.raises(ValueError, match="chunk the phase"):
        drive(env, vmm2.touch(1, np.arange(80)))


def test_bgwriter_interrupted_mid_write_leaves_consistent_state():
    env = Environment()
    node = Node.build(env, "n0", 2.0, "lru")
    vmm = node.vmm
    vmm.register_process(1, 256)
    drive(env, vmm.touch(1, np.arange(128), dirty=True))
    bw = BackgroundWriter(vmm, batch_pages=64, poll_s=0.1)
    bw.start(1)
    # stop while the first burst's disk write is still in flight
    env.run(until=env.now + 0.005)
    bw.stop()
    env.run(until=env.now + 1.0)
    assert not bw.active
    vmm.check_invariants()
    # all pages still resident; no frame leaked
    assert vmm.tables[1].resident_count == 128


def test_process_exit_during_pending_bgwrite():
    env = Environment()
    node = Node.build(env, "n0", 2.0, "bg")
    vmm = node.vmm
    vmm.register_process(1, 256)
    drive(env, vmm.touch(1, np.arange(128), dirty=True))
    ap = node.adaptive
    ap.start_bgwrite(1)
    env.run(until=env.now + 0.005)
    vmm.unregister_process(1)  # process exits with writer active
    env.run(until=env.now + 2.0)  # writer must notice and terminate
    assert not ap.bgwriter.active or ap.bgwriter.pid != 1
    assert vmm.frames.used == 0


def test_adaptive_api_with_unknown_pids_is_safe():
    env = Environment()
    node = Node.build(env, "n0", 2.0, "so/ao/ai/bg")
    ap = node.adaptive

    def run():
        yield from ap.adaptive_page_out(in_pid=99, out_pid=98)
        yield from ap.adaptive_page_in(in_pid=99, out_pid=98)

    drive(env, run())  # no exception
    ap.stop_bgwrite()  # idempotent without start


def test_interrupting_touch_mid_fault_propagates_cleanly():
    """A touch fragment is kernel work: interrupting the *driving*
    process mid-fault must release the eviction lock and not corrupt
    frame accounting."""
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(env, MemoryParams(total_frames=96), disk)
    vmm.register_process(1, 256)
    caught = []

    def victim():
        try:
            yield from vmm.touch(1, np.arange(80), dirty=True)
            yield from vmm.touch(1, np.arange(80, 160), dirty=True)
        except Interrupt:
            caught.append(env.now)

    def attacker(p):
        yield env.timeout(0.02)
        p.interrupt("sigkill-ish")

    p = env.process(victim())
    env.process(attacker(p))
    env.run()
    assert caught
    # the eviction lock must not be held forever: a later reclaim works
    drive(env, vmm.reclaim(8))
    assert vmm.frames.free >= 8


def test_clean_teardown_mid_run_keeps_other_process_usable():
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(env, MemoryParams(total_frames=128), disk)
    vmm.register_process(1, 256)
    vmm.register_process(2, 256)
    drive(env, vmm.touch(1, np.arange(80), dirty=True))
    drive(env, vmm.touch(2, np.arange(40), dirty=True))
    vmm.unregister_process(1)
    drive(env, vmm.touch(2, np.arange(40, 120), dirty=True))
    vmm.check_invariants()
    assert vmm.tables[2].resident_count == 120
