"""Tests for the scheduling matrix and the general gang scheduler."""

import pytest

from repro.cluster import Node
from repro.gang.job import Job
from repro.gang.matrix import MatrixGangScheduler, ScheduleMatrix
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


# ---------------------------------------------------------------------------
# ScheduleMatrix (pure data structure — jobs can be any hashable stub)
# ---------------------------------------------------------------------------

class StubJob:
    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name


def test_matrix_validation():
    with pytest.raises(ValueError):
        ScheduleMatrix(0)
    m = ScheduleMatrix(4)
    with pytest.raises(ValueError):
        m.place(StubJob("a"), [])
    with pytest.raises(ValueError):
        m.place(StubJob("a"), [7])


def test_place_first_fit_shares_rows():
    m = ScheduleMatrix(4)
    a, b, c = StubJob("a"), StubJob("b"), StubJob("c")
    assert m.place(a, [0, 1]) == 0
    assert m.place(b, [2, 3]) == 0   # disjoint -> same row
    assert m.place(c, [1, 2]) == 1   # overlaps both -> new row
    assert m.nrows == 2
    assert m.row_jobs(0) == [a, b]
    assert m.row_jobs(1) == [c]


def test_double_place_rejected():
    m = ScheduleMatrix(2)
    a = StubJob("a")
    m.place(a, [0])
    with pytest.raises(ValueError):
        m.place(a, [1])


def test_remove_drops_empty_rows():
    m = ScheduleMatrix(2)
    a, b = StubJob("a"), StubJob("b")
    m.place(a, [0, 1])
    m.place(b, [0])
    m.remove(a)
    assert m.nrows == 1
    assert m.row_jobs(0) == [b]
    with pytest.raises(KeyError):
        m.remove(a)


def test_utilization():
    m = ScheduleMatrix(4)
    assert m.utilization() == 0.0
    m.place(StubJob("a"), [0, 1, 2, 3])
    m.place(StubJob("b"), [0, 1])
    assert m.utilization() == pytest.approx(6 / 8)


def test_compact_merges_rows():
    m = ScheduleMatrix(4)
    a, b, c = StubJob("a"), StubJob("b"), StubJob("c")
    m.place(a, [0, 1])
    m.place(b, [2, 3])
    m.place(c, [0, 1])   # forced to row 1
    m.remove(a)          # row 0 now has a hole at 0,1
    assert m.nrows == 2
    assert m.compact() == 1
    assert m.nrows == 1
    assert set(m.row_jobs(0)) == {b, c}


def test_compact_keeps_overlapping_rows():
    m = ScheduleMatrix(2)
    a, b = StubJob("a"), StubJob("b")
    m.place(a, [0, 1])
    m.place(b, [0, 1])
    assert m.compact() == 0
    assert m.nrows == 2


# ---------------------------------------------------------------------------
# MatrixGangScheduler (integration)
# ---------------------------------------------------------------------------

def build_nodes(env, n, memory_mb=8.0, policy="lru"):
    return [Node.build(env, f"n{i}", memory_mb, policy) for i in range(n)]


def make_job(name, nodes, rngs, pages=400, iters=2, cpu=2e-3):
    wls = [
        SequentialSweepWorkload(pages, iters, cpu_per_page_s=cpu,
                                max_phase_pages=256, name=name,
                                barrier_per_iteration=len(nodes) > 1)
        for _ in nodes
    ]
    return Job(name, nodes, wls, rngs.spawn(name))


def test_matrix_scheduler_runs_mixed_job_sizes():
    env = Environment()
    nodes = build_nodes(env, 4)
    rngs = RngStreams(5)
    big = make_job("big", nodes, rngs)                 # all 4 nodes
    left = make_job("left", nodes[:2], rngs)           # nodes 0-1
    right = make_job("right", nodes[2:], rngs)         # nodes 2-3
    m = ScheduleMatrix(4)
    m.place(big, [0, 1, 2, 3])
    m.place(left, [0, 1])
    m.place(right, [2, 3])                             # shares a row
    assert m.nrows == 2
    sched = MatrixGangScheduler(env, nodes, m, quantum_s=3.0)
    sched.start()
    env.run()
    for job in (big, left, right):
        assert job.finished, job.name
    for node in nodes:
        assert node.vmm.frames.used == 0
        node.vmm.check_invariants()
    assert sched.rotations >= 2


def test_matrix_scheduler_single_row_no_switching():
    env = Environment()
    nodes = build_nodes(env, 2)
    rngs = RngStreams(6)
    a = make_job("a", nodes[:1], rngs)
    b = make_job("b", nodes[1:], rngs)
    m = ScheduleMatrix(2)
    m.place(a, [0])
    m.place(b, [1])
    sched = MatrixGangScheduler(env, nodes, m, quantum_s=5.0)
    sched.start()
    env.run()
    assert a.finished and b.finished
    # concurrent (same-row) jobs never preempt each other
    assert abs(a.completed_at - b.completed_at) < 5.0


def test_matrix_scheduler_adaptive_beats_lru_mixed():
    def makespan(policy):
        env = Environment()
        nodes = build_nodes(env, 2, memory_mb=6.0, policy=policy)
        rngs = RngStreams(7)
        jobs = [
            make_job(f"j{i}", nodes, rngs, pages=1100, iters=3)
            for i in range(3)
        ]
        m = ScheduleMatrix(2)
        for i, j in enumerate(jobs):
            m.place(j, [0, 1])
        MatrixGangScheduler(env, nodes, m, quantum_s=3.0).start()
        env.run()
        return max(j.completed_at for j in jobs)

    assert makespan("so/ao/ai/bg") <= makespan("lru")


def test_matrix_scheduler_validation():
    env = Environment()
    nodes = build_nodes(env, 2)
    m = ScheduleMatrix(3)
    with pytest.raises(ValueError):
        MatrixGangScheduler(env, nodes, m, quantum_s=1.0)
    m2 = ScheduleMatrix(2)
    with pytest.raises(ValueError):
        MatrixGangScheduler(env, nodes, m2, quantum_s=0)
    s = MatrixGangScheduler(env, nodes, m2, quantum_s=1.0)
    rngs = RngStreams(1)
    job = make_job("x", nodes, rngs, pages=64, iters=1)
    m2.place(job, [0, 1])
    s.start()
    with pytest.raises(RuntimeError):
        s.start()
    env.run()


def test_finished_jobs_leave_matrix_and_machine_backfills():
    env = Environment()
    nodes = build_nodes(env, 2, memory_mb=8.0)
    rngs = RngStreams(8)
    quick = make_job("quick", nodes, rngs, pages=128, iters=1)
    slow = make_job("slow", nodes, rngs, pages=128, iters=4)
    m = ScheduleMatrix(2)
    m.place(quick, [0, 1])
    m.place(slow, [0, 1])
    sched = MatrixGangScheduler(env, nodes, m, quantum_s=1000.0)
    sched.start()
    env.run()
    assert quick.finished and slow.finished
    # slow was switched in immediately after quick exited, far before
    # the (huge) quantum expired
    assert slow.completed_at < 1000.0
    assert m.nrows == 0
