"""Admission control across node subsets (per-node capacity checks)."""

import pytest

from repro.cluster import Node
from repro.gang import AdmissionGangScheduler, Job
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def make_job(name, nodes, rngs, pages, iters=2):
    wls = [
        SequentialSweepWorkload(pages, iters, cpu_per_page_s=2e-3,
                                max_phase_pages=256, name=name,
                                barrier_per_iteration=len(nodes) > 1)
        for _ in nodes
    ]
    return Job(name, nodes, wls, rngs.spawn(name))


def capacity(node):
    p = node.vmm.params
    return p.total_frames - p.freepages_high


def test_disjoint_subsets_admit_together():
    env = Environment()
    nodes = [Node.build(env, f"n{i}", 8.0, "lru") for i in range(4)]
    rngs = RngStreams(21)
    cap = capacity(nodes[0])
    left = make_job("left", nodes[:2], rngs, pages=int(cap * 0.8))
    right = make_job("right", nodes[2:], rngs, pages=int(cap * 0.8))
    sched = AdmissionGangScheduler(env, [left, right], quantum_s=2.0)
    # no shared node -> both fit immediately despite each filling a node
    assert sched.queueing_delay(left) == 0.0
    assert sched.queueing_delay(right) == 0.0
    sched.start()
    env.run()
    assert left.finished and right.finished


def test_overlapping_subsets_respect_per_node_capacity():
    env = Environment()
    nodes = [Node.build(env, f"n{i}", 8.0, "lru") for i in range(2)]
    rngs = RngStreams(22)
    cap = capacity(nodes[0])
    wide = make_job("wide", nodes, rngs, pages=int(cap * 0.6))
    narrow = make_job("narrow", nodes[:1], rngs, pages=int(cap * 0.6))
    sched = AdmissionGangScheduler(env, [wide, narrow], quantum_s=2.0)
    # narrow shares node 0 with wide: 1.2x capacity -> must wait
    assert sched.queueing_delay(wide) == 0.0
    assert sched.queueing_delay(narrow) == float("inf")
    sched.start()
    env.run()
    assert wide.finished and narrow.finished
    assert sched.admitted_at["narrow"] >= wide.completed_at * 0.99


def test_mixed_cluster_never_overcommits_any_node():
    env = Environment()
    nodes = [Node.build(env, f"n{i}", 8.0, "lru") for i in range(2)]
    rngs = RngStreams(23)
    cap = capacity(nodes[0])
    jobs = [
        make_job("a", nodes, rngs, pages=int(cap * 0.5)),
        make_job("b", nodes[:1], rngs, pages=int(cap * 0.4)),
        make_job("c", nodes[1:], rngs, pages=int(cap * 0.4)),
        make_job("d", nodes, rngs, pages=int(cap * 0.5)),
    ]
    sched = AdmissionGangScheduler(env, jobs, quantum_s=2.0)
    sched.start()
    env.run()
    assert all(j.finished for j in jobs)
    # admission kept memory under capacity on both nodes: zero paging
    for node in nodes:
        assert node.disk.total_pages["read"] == 0, node.name
