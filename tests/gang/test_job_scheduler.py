"""Integration tests: jobs + gang/batch schedulers on simulated nodes."""

import numpy as np
import pytest

from repro.cluster import Node
from repro.gang import BatchScheduler, GangScheduler, Job
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def build_cluster(nnodes=1, memory_mb=8.0, policy="lru"):
    env = Environment()
    nodes = [
        Node.build(env, f"node{i}", memory_mb, policy) for i in range(nnodes)
    ]
    return env, nodes


def small_workload(pages=512, iters=3, **kw):
    # CPU-dense enough that a job spans multiple small quanta
    kw.setdefault("cpu_per_page_s", 2e-3)
    kw.setdefault("max_phase_pages", 256)
    return SequentialSweepWorkload(pages, iters, **kw)


def make_job(name, nodes, pages=512, iters=3, **kw):
    wls = [small_workload(pages, iters, name=name, **kw) for _ in nodes]
    return Job(name, nodes, wls, RngStreams(seed=1))


def test_job_requires_matching_workloads():
    env, nodes = build_cluster(2)
    with pytest.raises(ValueError):
        Job("j", nodes, [small_workload()], RngStreams(0))


def test_single_job_batch_completes():
    env, nodes = build_cluster(1)
    job = make_job("j1", nodes)
    BatchScheduler(env, [job]).start()
    env.run()
    assert job.finished
    assert job.completed_at > 0
    # memory was released at exit
    assert nodes[0].vmm.frames.used == 0


def test_batch_jobs_run_sequentially():
    env, nodes = build_cluster(1, memory_mb=8.0)
    j1 = make_job("j1", nodes)
    j2 = make_job("j2", nodes)
    BatchScheduler(env, [j1, j2]).start()
    env.run()
    assert j1.finished and j2.finished
    assert j2.completed_at > j1.completed_at
    # j2 never consumed CPU before j1 finished
    assert j2.processes[0].control.cpu_consumed_s > 0


def test_gang_scheduler_single_job():
    env, nodes = build_cluster(1)
    job = make_job("solo", nodes)
    sched = GangScheduler(env, [job], quantum_s=5.0)
    sched.start()
    env.run()
    assert job.finished
    assert len(sched.switches) == 1  # only the initial switch-in


def test_gang_two_jobs_alternate():
    env, nodes = build_cluster(1, memory_mb=8.0)
    j1 = make_job("j1", nodes, pages=256, iters=4)
    j2 = make_job("j2", nodes, pages=256, iters=4)
    sched = GangScheduler(env, [j1, j2], quantum_s=2.0)
    sched.start()
    env.run()
    assert j1.finished and j2.finished
    assert len(sched.switches) >= 3
    names = [s.in_job for s in sched.switches]
    # strict alternation while both jobs live
    for a, b in zip(names, names[1:]):
        if a in ("j1", "j2") and b in ("j1", "j2"):
            assert a != b


def test_gang_switch_records_out_job():
    env, nodes = build_cluster(1, memory_mb=8.0)
    j1 = make_job("j1", nodes, iters=4)
    j2 = make_job("j2", nodes, iters=4)
    sched = GangScheduler(env, [j1, j2], quantum_s=2.0)
    sched.start()
    env.run()
    assert sched.switches[0].out_job is None
    assert sched.switches[1].out_job == sched.switches[0].in_job


def test_gang_early_switch_on_job_completion():
    """When the running job exits mid-quantum the next job starts
    immediately rather than waiting out the quantum."""
    env, nodes = build_cluster(1, memory_mb=8.0)
    short = make_job("short", nodes, pages=64, iters=1)
    lng = make_job("long", nodes, pages=64, iters=3)
    sched = GangScheduler(env, [short, lng], quantum_s=1000.0)
    sched.start()
    env.run()
    assert short.finished and lng.finished
    # total took far less than one quantum
    assert lng.completed_at < 1000.0


def test_gang_respects_quantum_override():
    env, nodes = build_cluster(1, memory_mb=8.0)
    j1 = make_job("j1", nodes, pages=2048, iters=4)
    j2 = make_job("j2", nodes, pages=2048, iters=4)
    sched = GangScheduler(
        env, [j1, j2], quantum_s=2.0, quantum_overrides={"j2": 6.0}
    )
    sched.start()
    env.run(until=20.0)
    # find a j2 quantum: gap between its switch-in and the next switch
    spans = []
    for a, b in zip(sched.switches, sched.switches[1:]):
        spans.append((a.in_job, b.started_at - a.started_at))
    j2_spans = [s for n, s in spans if n == "j2"]
    assert j2_spans and all(s >= 6.0 - 1e-9 for s in j2_spans)


def test_scheduler_validation():
    env, nodes = build_cluster(1)
    job = make_job("j", nodes)
    with pytest.raises(ValueError):
        GangScheduler(env, [], quantum_s=1.0)
    with pytest.raises(ValueError):
        GangScheduler(env, [job], quantum_s=0)
    s = GangScheduler(env, [job], quantum_s=1.0)
    s.start()
    with pytest.raises(RuntimeError):
        s.start()


def test_parallel_job_ranks_synchronise():
    env, nodes = build_cluster(2, memory_mb=8.0)
    wls = [
        small_workload(256, 2, barrier_per_iteration=True, comm_s=0.01)
        for _ in nodes
    ]
    job = Job("par", nodes, wls, RngStreams(3))
    BatchScheduler(env, [job]).start()
    env.run()
    assert job.finished
    assert job.barrier.rounds_completed == 2


def test_gang_scheduled_parallel_jobs_on_two_nodes():
    env, nodes = build_cluster(2, memory_mb=6.0)
    jobs = []
    for name in ("a", "b"):
        wls = [
            small_workload(768, 2, barrier_per_iteration=True, name=name)
            for _ in nodes
        ]
        jobs.append(Job(name, nodes, wls, RngStreams(4)))
    sched = GangScheduler(env, jobs, quantum_s=3.0)
    sched.start()
    env.run()
    assert all(j.finished for j in jobs)
    for node in nodes:
        node.vmm.check_invariants()
        assert node.vmm.frames.used == 0


def test_memory_pressure_between_jobs_causes_paging():
    env, nodes = build_cluster(1, memory_mb=6.0)  # 1536 frames
    j1 = make_job("big1", nodes, pages=1100, iters=3, dirty_fraction=0.8)
    j2 = make_job("big2", nodes, pages=1100, iters=3, dirty_fraction=0.8)
    sched = GangScheduler(env, [j1, j2], quantum_s=3.0)
    sched.start()
    env.run()
    vmm = nodes[0].vmm
    assert vmm.stats.pages_swapped_out > 0
    assert vmm.stats.pages_swapped_in > 0
    vmm.check_invariants()


def test_adaptive_policy_runs_end_to_end():
    for policy in ("lru", "ai", "so", "so/ao", "so/ao/bg", "so/ao/ai/bg"):
        env, nodes = build_cluster(1, memory_mb=6.0, policy=policy)
        j1 = make_job("j1", nodes, pages=1100, iters=3, dirty_fraction=0.8)
        j2 = make_job("j2", nodes, pages=1100, iters=3, dirty_fraction=0.8)
        sched = GangScheduler(env, [j1, j2], quantum_s=3.0)
        sched.start()
        env.run()
        assert j1.finished and j2.finished, policy
        nodes[0].vmm.check_invariants()


def test_adaptive_beats_lru_under_pressure():
    """End-to-end sanity: the full mechanism stack finishes the same
    overcommitted two-job mix no later than plain LRU."""
    def makespan(policy):
        env, nodes = build_cluster(1, memory_mb=6.0, policy=policy)
        j1 = make_job("j1", nodes, pages=1200, iters=4, dirty_fraction=0.7)
        j2 = make_job("j2", nodes, pages=1200, iters=4, dirty_fraction=0.7)
        GangScheduler(env, [j1, j2], quantum_s=3.0).start()
        env.run()
        return max(j1.completed_at, j2.completed_at)

    assert makespan("so/ao/ai/bg") <= makespan("lru")
