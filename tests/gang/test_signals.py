"""Unit tests for SIGSTOP/SIGCONT process control."""

import pytest

from repro.gang import ProcessControl
from repro.sim import Environment


def test_starts_stopped_by_default():
    env = Environment()
    c = ProcessControl(env)
    assert c.stopped


def test_wait_runnable_blocks_until_cont():
    env = Environment()
    c = ProcessControl(env)
    log = []

    def proc(env, c):
        yield from c.wait_runnable()
        log.append(env.now)

    def starter(env, c):
        yield env.timeout(5.0)
        c.cont()

    p = env.process(proc(env, c))
    c.bind(p)
    env.process(starter(env, c))
    env.run()
    assert log == [5.0]
    assert c.stopped_waiting_s == pytest.approx(5.0)


def test_cpu_burst_runs_to_completion_when_runnable():
    env = Environment()
    c = ProcessControl(env, start_stopped=False)

    def proc(env, c):
        yield from c.cpu(3.0)
        return env.now

    p = env.process(proc(env, c))
    c.bind(p)
    assert env.run(until=p) == 3.0
    assert c.cpu_consumed_s == pytest.approx(3.0)


def test_stop_interrupts_cpu_and_cont_resumes_remainder():
    env = Environment()
    c = ProcessControl(env, start_stopped=False)
    done = []

    def proc(env, c):
        yield from c.cpu(10.0)
        done.append(env.now)

    def controller(env, c):
        yield env.timeout(4.0)
        c.stop()
        yield env.timeout(100.0)
        c.cont()

    p = env.process(proc(env, c))
    c.bind(p)
    env.process(controller(env, c))
    env.run()
    # 4s consumed, stopped for 100s, remaining 6s after cont
    assert done == [pytest.approx(110.0)]
    assert c.cpu_consumed_s == pytest.approx(10.0)


def test_multiple_stop_cont_cycles():
    env = Environment()
    c = ProcessControl(env, start_stopped=False)
    done = []

    def proc(env, c):
        yield from c.cpu(6.0)
        done.append(env.now)

    def controller(env, c):
        for _ in range(3):
            yield env.timeout(2.0)
            c.stop()
            yield env.timeout(10.0)
            c.cont()

    p = env.process(proc(env, c))
    c.bind(p)
    env.process(controller(env, c))
    env.run()
    # run 0-2, stopped 2-12, run 12-14, stopped 14-24, run 24-26
    assert done == [pytest.approx(26.0)]


def test_stop_and_cont_are_idempotent():
    env = Environment()
    c = ProcessControl(env, start_stopped=False)
    c.stop()
    c.stop()
    assert c.stopped
    c.cont()
    c.cont()
    assert not c.stopped


def test_stop_while_not_in_cpu_does_not_interrupt():
    """Stopping a process blocked on I/O-like waiting must not blow it
    up; it pauses at the next runnable check."""
    env = Environment()
    c = ProcessControl(env, start_stopped=False)
    log = []

    def proc(env, c):
        yield env.timeout(5.0)  # "kernel work" — not interruptible
        yield from c.wait_runnable()
        log.append(env.now)

    def controller(env, c):
        yield env.timeout(1.0)
        c.stop()
        yield env.timeout(9.0)
        c.cont()

    p = env.process(proc(env, c))
    c.bind(p)
    env.process(controller(env, c))
    env.run()
    assert log == [10.0]


def test_negative_cpu_rejected():
    env = Environment()
    c = ProcessControl(env, start_stopped=False)

    def proc(env, c):
        yield from c.cpu(-1.0)

    p = env.process(proc(env, c))
    c.bind(p)
    with pytest.raises(ValueError):
        env.run()


def test_cpu_zero_is_noop():
    env = Environment()
    c = ProcessControl(env, start_stopped=False)

    def proc(env, c):
        yield from c.cpu(0.0)
        return env.now

    p = env.process(proc(env, c))
    c.bind(p)
    assert env.run(until=p) == 0.0
