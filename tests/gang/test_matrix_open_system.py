"""Direct tests for the matrix scheduler's open-system primitives."""

import pytest

from repro.cluster import Node
from repro.gang.job import Job
from repro.gang.matrix import MatrixGangScheduler, ScheduleMatrix
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def make_job(name, nodes, rngs, pages=256, iters=2):
    wls = [
        SequentialSweepWorkload(pages, iters, cpu_per_page_s=2e-3,
                                max_phase_pages=128, name=name)
        for _ in nodes
    ]
    return Job(name, nodes, wls, rngs.spawn(name))


def test_idle_open_scheduler_waits_for_submission():
    env = Environment()
    nodes = [Node.build(env, "n0", 8.0, "lru")]
    m = ScheduleMatrix(1)
    sched = MatrixGangScheduler(env, nodes, m, quantum_s=2.0,
                                accept_arrivals=True)
    sched.start()
    rngs = RngStreams(31)
    holder = {}

    def submitter(env):
        yield env.timeout(5.0)  # scheduler idles meanwhile
        job = make_job("late", nodes, rngs)
        holder["job"] = job
        sched.submit(job, [0])
        sched.close()

    env.process(submitter(env))
    env.run()
    job = holder["job"]
    assert job.finished
    assert job.completed_at > 5.0
    # no busy-waiting happened while idle: the scheduler parked
    assert sched.rotations >= 1


def test_close_without_jobs_terminates():
    env = Environment()
    nodes = [Node.build(env, "n0", 4.0, "lru")]
    sched = MatrixGangScheduler(env, nodes, ScheduleMatrix(1),
                                quantum_s=1.0, accept_arrivals=True)
    p = sched.start()

    def closer(env):
        yield env.timeout(1.0)
        sched.close()

    env.process(closer(env))
    env.run()
    assert not p.is_alive


def test_submission_during_active_rotation_joins_later():
    env = Environment()
    nodes = [Node.build(env, "n0", 8.0, "lru")]
    rngs = RngStreams(32)
    first = make_job("first", nodes, rngs, iters=4)
    m = ScheduleMatrix(1)
    m.place(first, [0])
    sched = MatrixGangScheduler(env, nodes, m, quantum_s=1.0,
                                accept_arrivals=True)
    sched.start()
    holder = {}

    def submitter(env):
        yield env.timeout(1.5)
        job = make_job("second", nodes, rngs, iters=2)
        holder["job"] = job
        sched.submit(job, [0])
        sched.close()

    env.process(submitter(env))
    env.run()
    assert first.finished and holder["job"].finished
    # the late job never ran before its arrival
    assert all(
        t >= 1.5 for t, s in holder["job"].processes[0].control.transitions
        if s == "running"
    )


def test_closed_scheduler_matrix_drains_and_stops():
    env = Environment()
    nodes = [Node.build(env, "n0", 8.0, "lru")]
    rngs = RngStreams(33)
    job = make_job("only", nodes, rngs)
    m = ScheduleMatrix(1)
    m.place(job, [0])
    sched = MatrixGangScheduler(env, nodes, m, quantum_s=2.0,
                                accept_arrivals=True)
    p = sched.start()

    def closer(env):
        yield env.timeout(0.5)
        sched.close()

    env.process(closer(env))
    env.run()
    assert job.finished
    assert not p.is_alive
    assert m.nrows == 0
