"""Gang-layer fault handling: crashes, stragglers, eviction, no deadlock."""

import pytest

from repro.cluster import Node
from repro.faults import FaultPlan, FaultRates
from repro.gang import GangScheduler, Job
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def build_cluster(nnodes=1, memory_mb=8.0, policy="lru"):
    env = Environment()
    nodes = [
        Node.build(env, f"node{i}", memory_mb, policy) for i in range(nnodes)
    ]
    return env, nodes


def make_job(name, nodes, pages=256, iters=4):
    wls = [
        SequentialSweepWorkload(pages, iters, name=name,
                                cpu_per_page_s=2e-3, max_phase_pages=128)
        for _ in nodes
    ]
    return Job(name, nodes, wls, RngStreams(seed=1))


class ScriptedNodeFaults:
    """Duck-typed plan: crash/straggle specific nodes once."""

    def __init__(self, crash=(), straggle=(), factor=2.0):
        self.crash = set(crash)
        self.straggle = set(straggle)
        self.factor = factor

    def node_crash(self, node):
        if node in self.crash:
            self.crash.discard(node)
            return True
        return False

    def node_straggle(self, node):
        if node in self.straggle:
            self.straggle.discard(node)
            return self.factor
        return 1.0


def test_externally_failed_node_evicts_its_jobs():
    env, nodes = build_cluster(1)
    j1 = make_job("j1", nodes)
    j2 = make_job("j2", nodes)
    sched = GangScheduler(env, [j1, j2], quantum_s=2.0)
    sched.start()
    # fail the node mid-run, with no fault plan attached at all:
    # detection at the quantum boundary is injection-agnostic

    def killer():
        yield env.timeout(3.0)
        nodes[0].fail("pulled the power cord")

    env.process(killer())
    env.run()
    assert j1.failed and j2.failed
    assert sched.jobs_evicted == 2
    assert all("crashed" in r.cause for r in sched.evictions)
    # done events fired: the scheduler returned instead of deadlocking
    assert j1.done.processed and j2.done.processed


def test_jobs_on_healthy_nodes_survive_a_crash():
    env, nodes = build_cluster(2)
    j1 = make_job("doomed", [nodes[0]])
    j2 = make_job("survivor", [nodes[1]])
    sched = GangScheduler(
        env, [j1, j2], quantum_s=2.0,
        faults=ScriptedNodeFaults(crash={"node0"}),
    )
    sched.start()
    env.run()
    assert j1.failed and not j2.failed
    assert j2.completed_at is not None
    assert sched.jobs_evicted == 1
    assert sched.evictions[0].job == "doomed"


def test_injected_crash_takes_a_quantum_to_happen():
    # injection is skipped at the pre-run boundary (gen 0): a crash can
    # only be drawn once a quantum has actually elapsed
    env, nodes = build_cluster(1)
    job = make_job("j", nodes)
    sched = GangScheduler(
        env, [job], quantum_s=2.0,
        faults=FaultPlan(FaultRates(crash_rate=1.0)),
    )
    sched.start()
    env.run()
    assert job.failed
    assert job.failed_at >= 2.0


def test_straggler_extends_quantum_and_job_completes():
    env, nodes = build_cluster(1)
    j1 = make_job("j1", nodes)
    j2 = make_job("j2", nodes)
    sched = GangScheduler(
        env, [j1, j2], quantum_s=2.0,
        faults=ScriptedNodeFaults(straggle={"node0"}, factor=2.0),
    )
    sched.start()
    env.run()
    assert sched.straggler_extensions == 1
    assert j1.finished and j2.finished
    assert not j1.failed and not j2.failed


def test_straggler_extension_is_capped():
    env, nodes = build_cluster(1)
    job = make_job("j", nodes)
    sched = GangScheduler(
        env, [job], quantum_s=2.0, straggler_extension_cap=1.5,
        faults=ScriptedNodeFaults(straggle={"node0"}, factor=100.0),
    )
    sched.start()
    env.run()
    assert job.finished
    assert sched.straggler_extensions >= 1


def test_slowdown_resets_after_one_quantum():
    env, nodes = build_cluster(1)
    job = make_job("j", nodes)
    sched = GangScheduler(
        env, [job], quantum_s=2.0,
        faults=ScriptedNodeFaults(straggle={"node0"}),
    )
    sched.start()
    env.run()
    assert nodes[0].slowdown == 1.0


def test_terminate_is_idempotent_and_cont_is_inert():
    env, nodes = build_cluster(1)
    job = make_job("j", nodes)
    GangScheduler(env, [job], quantum_s=1.0).start()
    env.run(until=0.5)
    job.terminate("test eviction")
    job.terminate("second call ignored")
    assert job.failure == "test eviction"
    job.cont()  # must not resurrect stopped ranks
    env.run()
    assert job.failed and not job.completed_at
    assert all(p.finished_at is None for p in job.processes)


def test_scheduler_rejects_bad_extension_cap():
    env, nodes = build_cluster(1)
    job = make_job("j", nodes)
    with pytest.raises(ValueError):
        GangScheduler(env, [job], straggler_extension_cap=0.5)


def test_zero_rate_plan_reproduces_plain_run():
    def makespan(faults):
        env, nodes = build_cluster(1, memory_mb=8.0)
        j1 = make_job("j1", nodes)
        j2 = make_job("j2", nodes)
        sched = GangScheduler(env, [j1, j2], quantum_s=2.0, faults=faults)
        sched.start()
        env.run()
        return max(j1.completed_at, j2.completed_at), len(sched.switches)

    assert makespan(None) == makespan(FaultPlan(FaultRates(), 0))
