"""Tests for the memory-aware admission scheduler (ref. [15])."""

import pytest

from repro.cluster import Node
from repro.gang import AdmissionGangScheduler, Job
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def make_job(name, nodes, rngs, pages, iters=2, cpu=2e-3):
    wls = [
        SequentialSweepWorkload(pages, iters, cpu_per_page_s=cpu,
                                max_phase_pages=256, name=name)
        for _ in nodes
    ]
    return Job(name, nodes, wls, rngs.spawn(name))


def build(memory_mb=8.0, policy="lru"):
    env = Environment()
    nodes = [Node.build(env, "n0", memory_mb, policy)]
    return env, nodes, RngStreams(11)


def capacity_pages(node):
    p = node.vmm.params
    return p.total_frames - p.freepages_high


def test_fitting_jobs_are_admitted_immediately():
    env, nodes, rngs = build()
    cap = capacity_pages(nodes[0])
    a = make_job("a", nodes, rngs, pages=cap // 3)
    b = make_job("b", nodes, rngs, pages=cap // 3)
    sched = AdmissionGangScheduler(env, [a, b], quantum_s=2.0)
    assert sched.queueing_delay(a) == 0.0
    assert sched.queueing_delay(b) == 0.0
    sched.start()
    env.run()
    assert a.finished and b.finished


def test_oversized_pair_serialises():
    env, nodes, rngs = build()
    cap = capacity_pages(nodes[0])
    a = make_job("a", nodes, rngs, pages=int(cap * 0.7))
    b = make_job("b", nodes, rngs, pages=int(cap * 0.7))
    sched = AdmissionGangScheduler(env, [a, b], quantum_s=2.0)
    sched.start()
    env.run()
    assert a.finished and b.finished
    # b waited for a to finish
    assert sched.queueing_delay(b) >= a.completed_at * 0.99
    # no paging ever happened: both always fit alone
    assert nodes[0].disk.total_pages["read"] == 0


def test_strict_fcfs_blocks_small_job_behind_large():
    env, nodes, rngs = build()
    cap = capacity_pages(nodes[0])
    a = make_job("a", nodes, rngs, pages=int(cap * 0.7), iters=3)
    big = make_job("big", nodes, rngs, pages=int(cap * 0.7))
    tiny = make_job("tiny", nodes, rngs, pages=cap // 10, iters=1)
    sched = AdmissionGangScheduler(env, [a, big, tiny], quantum_s=2.0)
    sched.start()
    env.run()
    # tiny could have fit next to a, but FCFS held it behind big
    assert sched.admitted_at["tiny"] >= sched.admitted_at["big"]


def test_backfilling_mode_admits_small_job_early():
    env, nodes, rngs = build()
    cap = capacity_pages(nodes[0])
    a = make_job("a", nodes, rngs, pages=int(cap * 0.7), iters=3)
    big = make_job("big", nodes, rngs, pages=int(cap * 0.7))
    tiny = make_job("tiny", nodes, rngs, pages=cap // 10, iters=1)
    sched = AdmissionGangScheduler(env, [a, big, tiny], quantum_s=2.0,
                                   strict_fcfs=False)
    sched.start()
    env.run()
    assert sched.admitted_at["tiny"] < sched.admitted_at["big"]


def test_job_larger_than_memory_still_admitted_alone():
    env, nodes, rngs = build(memory_mb=4.0)
    cap = capacity_pages(nodes[0])
    giant = make_job("giant", nodes, rngs, pages=int(cap * 1.5), iters=1)
    sched = AdmissionGangScheduler(env, [giant], quantum_s=2.0)
    sched.start()
    env.run()
    assert giant.finished
