"""Tests for sweep-scale observability (repro.obs.sweep)."""

import io
import json

import pytest

from repro.obs import Registry, summary
from repro.obs.registry import Span
from repro.obs.sweep import (
    ProgressTicker,
    SweepEventLog,
    SweepObserver,
    bench_trajectory,
    capture_enabled,
    flag_regressions,
    get_default_sweep,
    load_bench_reports,
    load_events,
    merge_summaries,
    render_bench_report,
    render_event_table,
    set_capture,
    set_default_sweep,
    summary_of_snapshot,
)


def _cell_registry(seed: int) -> Registry:
    reg = Registry()
    rid = reg.begin_run("cell")
    reg.counter("disk_pages", op="read").inc(10 * seed)
    reg.gauge("free", node="n0").set(seed)
    reg.histogram("svc").observe(0.5 * seed)
    reg.histogram("svc").observe(1.5 * seed)
    reg.span("switch", "scheduler", 0.0, 3.0)
    reg.span("page_out", "n0", 0.0, 1.0)
    reg.end_run()
    return reg


# ---------------------------------------------------------------------------
# snapshot / merge
# ---------------------------------------------------------------------------

def test_snapshot_roundtrip_preserves_summary():
    reg = _cell_registry(1)
    snap = reg.snapshot()
    # JSON-able wire format
    snap2 = json.loads(json.dumps(snap))
    other = Registry()
    other.merge(snap2)
    assert summary(other) == summary(reg)


def test_merge_is_additive_by_exact_key():
    a = _cell_registry(1)
    b = _cell_registry(2)
    merged = Registry()
    merged.merge(a)
    merged.merge(b)
    s = summary(merged)
    key = "disk_pages{op=read,run=0:cell}"
    assert s["counters"][key] == 30
    # gauges add under aggregation
    assert s["gauges"]["free{node=n0,run=0:cell}"] == 3
    h = s["histograms"]["svc{run=0:cell}"]
    assert h["count"] == 4
    assert h["min"] == 0.5 and h["max"] == 3.0
    assert s["spans"]["switch"]["count"] == 2


def test_merge_track_prefix_namespaces_spans():
    merged = Registry()
    merged.merge(_cell_registry(1), track_prefix="(1, 'lru')")
    merged.merge(_cell_registry(2), track_prefix="(2, 'lru')")
    tracks = {s.track for s in merged.spans}
    assert "(1, 'lru')/0:cell/scheduler" in tracks
    assert "(2, 'lru')/0:cell/n0" in tracks


def test_merge_rejects_unknown_snapshot_version():
    snap = _cell_registry(1).snapshot()
    snap["v"] = 99
    with pytest.raises(ValueError, match="version"):
        Registry().merge(snap)


def test_summary_of_snapshot_matches_source():
    reg = _cell_registry(3)
    assert summary_of_snapshot(reg.snapshot()) == summary(reg)


# ---------------------------------------------------------------------------
# merge_summaries
# ---------------------------------------------------------------------------

def test_merge_summaries_is_elementwise_sum():
    summaries = [summary(_cell_registry(s)) for s in (1, 2, 3)]
    out = merge_summaries(summaries)
    key = "disk_pages{op=read,run=0:cell}"
    assert out["counters"][key] == sum(s["counters"][key] for s in summaries)
    h = out["histograms"]["svc{run=0:cell}"]
    assert h["count"] == 6
    assert h["sum"] == pytest.approx(sum(
        s["histograms"]["svc{run=0:cell}"]["sum"] for s in summaries))
    assert h["min"] == 0.5 and h["max"] == 4.5
    sw = out["spans"]["switch"]
    assert sw["count"] == 3 and sw["total_s"] == 9.0 and sw["max_s"] == 3.0


def test_merge_summaries_handles_empty_histograms():
    empty = {"histograms": {"svc{}": {"count": 0, "sum": 0.0,
                                      "min": None, "max": None}}}
    full = {"histograms": {"svc{}": {"count": 2, "sum": 3.0,
                                     "min": 1.0, "max": 2.0}}}
    out = merge_summaries([empty, full, empty])
    assert out["histograms"]["svc{}"] == {
        "count": 2, "sum": 3.0, "min": 1.0, "max": 2.0}
    # all-empty stays None
    out2 = merge_summaries([empty, empty])
    assert out2["histograms"]["svc{}"]["min"] is None


def test_merge_summaries_of_nothing_is_empty():
    assert merge_summaries([]) == {
        "counters": {}, "gauges": {}, "histograms": {}, "spans": {}}


# ---------------------------------------------------------------------------
# SweepObserver
# ---------------------------------------------------------------------------

def _cell_result(seed: int, makespan: float = 7.0) -> dict:
    reg = _cell_registry(seed)
    return {"makespan": makespan,
            "_perf": {"obs": summary(reg), "obs_snapshot": reg.snapshot()}}


def test_observer_summary_equals_cell_sum():
    sweep = SweepObserver()
    results = {(s, "lru"): _cell_result(s) for s in (1, 2, 3)}
    assert sweep.absorb_results(results) == 3
    assert sweep.cell_count == 3
    assert sweep.cells_skipped == 0
    expected = merge_summaries(
        r["_perf"]["obs"] for r in results.values())
    assert sweep.summary() == expected
    # counters in the merged registry agree exactly with the summed view
    assert summary(sweep.registry)["counters"] == expected["counters"]


def test_observer_marker_span_per_cell():
    sweep = SweepObserver()
    sweep.absorb((1, "lru"), _cell_result(1, makespan=42.0))
    markers = [s for s in sweep.registry.spans if s.name == "cell"]
    assert len(markers) == 1
    assert markers[0].end == 42.0
    # marker rides the cell's own trace process
    assert markers[0].track == "(1, 'lru')/0:cell/sweep"


def test_observer_marker_span_for_spanless_cell():
    reg = Registry()
    reg.counter("events_total").inc(5)
    sweep = SweepObserver()
    sweep.absorb((1, "batch"), {
        "makespan": 9.0, "_perf": {"obs_snapshot": reg.snapshot()}})
    markers = [s for s in sweep.registry.spans if s.name == "cell"]
    assert markers[0].track == "(1, 'batch')/sweep"
    # no "obs" summary shipped -> reconstructed from the snapshot
    assert sweep.summary()["counters"] == {"events_total": 5}


def test_observer_skips_payload_free_results():
    sweep = SweepObserver()
    assert not sweep.absorb((1, "lru"), {"makespan": 1.0})
    assert not sweep.absorb((2, "lru"), None)
    assert sweep.cells_skipped == 2
    assert sweep.cell_count == 0


def test_observer_disambiguates_repeat_keys():
    sweep = SweepObserver()
    sweep.absorb("cell", _cell_result(1))
    sweep.absorb("cell", _cell_result(2))
    assert set(sweep.cell_summaries()) == {"cell", "cell#2"}


def test_default_sweep_toggles_capture_flag():
    prev = get_default_sweep()
    try:
        sweep = SweepObserver()
        set_default_sweep(sweep)
        assert get_default_sweep() is sweep
        assert capture_enabled()
        set_default_sweep(None)
        assert not capture_enabled()
    finally:
        set_default_sweep(prev)


def test_set_capture_env_flag():
    before = capture_enabled()
    try:
        set_capture(True)
        assert capture_enabled()
        set_capture(False)
        assert not capture_enabled()
    finally:
        set_capture(before)


# ---------------------------------------------------------------------------
# SweepEventLog
# ---------------------------------------------------------------------------

def test_event_log_records_and_mirrors(tmp_path):
    log = SweepEventLog()
    path = tmp_path / "deep" / "sweep.events.jsonl"
    log.attach(path)
    log.log("sweep_begin", cells=3, jobs=2)
    log.log("retry", key=(1, "lru"), attempt=1, error="boom",
            backoff_s=0.125)
    log.log("cell_done", key=(1, "lru"), attempt=2, wall_s=0.5)
    log.close_file()
    assert [e["seq"] for e in log.entries] == [0, 1, 2]
    assert log.counts() == {"cell_done": 1, "retry": 1, "sweep_begin": 1}
    assert log.named("retry")[0]["key"] == "(1, 'lru')"
    assert log.named("retry")[0]["attempt"] == 1
    loaded = load_events(path)
    assert [e["event"] for e in loaded] == [
        "sweep_begin", "retry", "cell_done"]
    assert loaded[1]["error"] == "boom"


def test_load_events_sniffs_non_event_files(tmp_path):
    p = tmp_path / "other.jsonl"
    p.write_text('{"type": "span", "name": "x"}\n')
    assert load_events(p) == []
    p.write_text("not json at all\n")
    assert load_events(p) == []
    assert load_events(tmp_path / "missing.jsonl") == []


def test_render_event_table():
    log = SweepEventLog()
    log.log("retry", key=(1, "lru"), attempt=1, error="boom",
            backoff_s=0.125)
    out = render_event_table(log.entries)
    assert "retry" in out
    assert "(1, 'lru')" in out
    assert "backoff_s=0.125" in out
    assert render_event_table([]).endswith("<no events recorded>")


# ---------------------------------------------------------------------------
# ProgressTicker
# ---------------------------------------------------------------------------

def _fake_clock(start=0.0):
    state = {"t": start}

    def clock():
        state["t"] += 1.0
        return state["t"]

    return clock


def test_ticker_renders_and_overwrites():
    buf = io.StringIO()
    tick = ProgressTicker(total=10, done=2, stream=buf, enabled=True,
                          min_interval_s=0.0, clock=_fake_clock())
    tick.add_events(5000)
    tick.update(done=3, running=4, quarantined=1, eta_s=75.0, force=True)
    tick.close()
    out = buf.getvalue()
    assert "\r" in out
    assert "sweep 3/10 done" in out
    assert "4 running" in out
    assert "1 quarantined" in out
    assert "ev/s" in out
    assert "ETA 1m15s" in out
    assert out.endswith("\n")


def test_ticker_disabled_for_non_tty():
    buf = io.StringIO()  # StringIO has no isatty -> True
    tick = ProgressTicker(total=5, stream=buf)
    assert tick.enabled is False
    tick.update(done=1, running=1, force=True)
    tick.close()
    assert buf.getvalue() == ""


def test_ticker_throttles_redraws():
    buf = io.StringIO()
    clock = iter(range(100)).__next__
    tick = ProgressTicker(total=5, stream=buf, enabled=True,
                          min_interval_s=10.0,
                          clock=lambda: float(clock()))
    tick.update(done=1, force=True)
    first = buf.getvalue()
    tick.update(done=2)  # within min_interval -> suppressed
    assert buf.getvalue() == first
    assert tick.done == 2  # state still tracked


# ---------------------------------------------------------------------------
# bench-trajectory report
# ---------------------------------------------------------------------------

def _bench_dir(tmp_path):
    (tmp_path / "BENCH_PR3.json").write_text(json.dumps({
        "bench": "b3", "mode": "full",
        "fig6_trajectory": [{"pr": "seed", "wall_s": 3.0},
                            {"pr": "PR3", "wall_s": 1.5}]}))
    (tmp_path / "BENCH_PR5.json").write_text(json.dumps({
        "bench": "b5", "mode": "full",
        "fig6_trajectory": [{"pr": "seed", "wall_s": 3.0},
                            {"pr": "PR3", "wall_s": 1.5},
                            {"pr": "PR5", "wall_s": 2.0}]}))
    (tmp_path / "BENCH_PR4.json").write_text("{corrupt")
    (tmp_path / "BENCH_other.json").write_text("{}")
    return tmp_path


def test_load_bench_reports_sorted_and_tolerant(tmp_path):
    reports = load_bench_reports(_bench_dir(tmp_path))
    assert [r["pr"] for r in reports] == [3, 5]
    assert reports[0]["report"]["bench"] == "b3"


def test_bench_trajectory_takes_longest(tmp_path):
    traj = bench_trajectory(load_bench_reports(_bench_dir(tmp_path)))
    assert [t["pr"] for t in traj] == ["seed", "PR3", "PR5"]


def test_flag_regressions_consecutive_steps():
    traj = [{"pr": "seed", "wall_s": 3.0}, {"pr": "PR3", "wall_s": 1.5},
            {"pr": "PR5", "wall_s": 2.0}]
    flags = flag_regressions(traj, tolerance=1.1)
    assert len(flags) == 1
    assert flags[0]["pr"] == "PR5"
    assert flags[0]["prev_pr"] == "PR3"
    assert flags[0]["factor"] == pytest.approx(2.0 / 1.5)
    # within tolerance -> clean
    assert flag_regressions(traj, tolerance=1.5) == []


def test_render_bench_report(tmp_path):
    reports = load_bench_reports(_bench_dir(tmp_path))
    text, regressions = render_bench_report(reports, tolerance=1.1)
    assert "Figure-6 LRU cell perf trajectory" in text
    assert "Committed BENCH reports" in text
    assert "REGRESSION: PR5" in text
    assert len(regressions) == 1
    text2, regs2 = render_bench_report(reports, tolerance=2.0)
    assert "no regressions" in text2
    assert regs2 == []


def test_render_bench_report_empty():
    text, regressions = render_bench_report([])
    assert "no fig6 trajectory" in text
    assert regressions == []
