"""Tests for the telemetry registry core."""

import pytest

from repro.obs import NULL_OBS, NullRegistry, Registry, get_default, set_default


def test_counter_memoized_and_increments():
    reg = Registry()
    c1 = reg.counter("reads", node="n0")
    c2 = reg.counter("reads", node="n0")
    assert c1 is c2
    c1.inc()
    c1.inc(4)
    assert c1.value == 5
    assert reg.value("reads") == 5
    assert reg.value("reads", node="n0") == 5
    assert reg.value("reads", node="n1") == 0


def test_value_sums_across_labels():
    reg = Registry()
    reg.counter("pages", node="n0", op="read").inc(10)
    reg.counter("pages", node="n1", op="read").inc(5)
    reg.counter("pages", node="n0", op="write").inc(3)
    assert reg.value("pages") == 18
    assert reg.value("pages", op="read") == 15
    assert reg.value("pages", node="n0") == 13
    assert reg.value("pages", node="n0", op="write") == 3


def test_gauge_and_histogram():
    reg = Registry()
    g = reg.gauge("free_frames", node="n0")
    g.set(100)
    g.set(42)
    assert g.value == 42
    h = reg.histogram("burst", node="n0")
    for v in (1.0, 3.0, 2.0):
        h.observe(v)
    assert h.count == 3
    assert h.total == 6.0
    assert h.vmin == 1.0 and h.vmax == 3.0
    assert h.mean == 2.0
    snap = h.snapshot()
    assert snap == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}


def test_empty_histogram_snapshot():
    reg = Registry()
    h = reg.histogram("empty")
    snap = h.snapshot()
    assert snap["count"] == 0
    assert snap["min"] is None and snap["max"] is None


def test_run_scoping_labels_and_tracks():
    reg = Registry()
    rid = reg.begin_run("cell-a")
    assert rid == reg.current_run
    assert rid.endswith(":cell-a")
    reg.counter("hits", node="n0").inc(2)
    reg.span("switch", "scheduler", 0.0, 1.0)
    reg.end_run()
    assert reg.current_run is None
    rid2 = reg.begin_run("cell-b")
    assert rid2 != rid
    reg.counter("hits", node="n0").inc(7)
    reg.span("switch", "scheduler", 2.0, 3.0)
    reg.end_run()

    assert reg.value("hits") == 9
    assert reg.value("hits", run=rid) == 2
    assert reg.value("hits", run=rid2) == 7
    assert len(reg.spans_named("switch")) == 2
    assert len(reg.spans_named("switch", run=rid)) == 1
    assert reg.spans_named("switch", run=rid)[0].track == f"{rid}/scheduler"


def test_span_duration_and_args():
    reg = Registry()
    reg.span("page_out", "node0", 1.5, 4.0, pid=3)
    (s,) = reg.spans
    assert s.duration == 2.5
    assert s.args == {"pid": 3}
    reg.span("drain", "node0", 1.0, 1.0)
    assert reg.spans[1].args is None


def test_counters_sorted_deterministically():
    reg = Registry()
    reg.counter("b", node="n1")
    reg.counter("a", node="n0")
    reg.counter("a", node="n1")
    names = [(c.name, dict(c.labels).get("node")) for c in reg.counters()]
    assert names == [("a", "n0"), ("a", "n1"), ("b", "n1")]


def test_clear_resets_everything():
    reg = Registry()
    reg.begin_run("x")
    reg.counter("c").inc()
    reg.gauge("g").set(1)
    reg.histogram("h").observe(1.0)
    reg.span("s", "t", 0.0, 1.0)
    reg.clear()
    assert reg.counters() == []
    assert reg.gauges() == []
    assert reg.histograms() == []
    assert reg.spans == []
    assert reg.current_run is None


def test_null_registry_is_inert():
    null = NullRegistry()
    assert null.enabled is False
    c = null.counter("anything", node="n0")
    c.inc()
    c.inc(100)
    null.gauge("g").set(5)
    null.histogram("h").observe(1.0)
    null.span("switch", "scheduler", 0.0, 1.0, pid=1)
    assert null.begin_run("x") is None
    null.end_run()
    assert null.current_run is None
    assert null.value("anything") == 0.0
    # all instruments are one shared no-op object
    assert null.counter("a") is null.histogram("b")
    assert NULL_OBS.enabled is False


def test_default_registry_install_and_remove():
    assert get_default() is NULL_OBS
    reg = Registry()
    set_default(reg)
    try:
        assert get_default() is reg
    finally:
        set_default(None)
    assert get_default() is NULL_OBS


def test_registry_enabled_flag():
    assert Registry().enabled is True
    with pytest.raises(TypeError):
        # labels are keyword-only strings, not positional
        Registry().counter("x", "oops")
