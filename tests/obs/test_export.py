"""Tests for the telemetry exporters."""

import json

from repro.obs import (
    PHASE_ORDER,
    Registry,
    chrome_trace,
    load_spans,
    phase_breakdown,
    render_phase_table,
    summary,
    write_chrome_trace,
    write_jsonl,
)


def _populated() -> Registry:
    reg = Registry()
    rid = reg.begin_run("cell")
    reg.counter("disk_pages", node="n0", op="read").inc(10)
    reg.counter("disk_pages", node="n0", op="write").inc(4)
    reg.gauge("free", node="n0").set(7)
    reg.histogram("svc", node="n0").observe(0.5)
    reg.span("switch", "scheduler", 0.0, 3.0, in_job="a")
    reg.span("drain", "n0", 0.0, 0.0)
    reg.span("page_out", "n0", 0.0, 1.0)
    reg.span("page_in_prefetch", "n0", 1.0, 3.0)
    reg.span("demand_fill", "n0.vmm", 3.0, 4.0, pid=1)
    reg.end_run()
    return reg


def test_summary_shape_and_determinism():
    reg = _populated()
    s = summary(reg)
    assert set(s) == {"counters", "gauges", "histograms", "spans"}
    run = f"0:cell"
    key = f"disk_pages{{node=n0,op=read,run={run}}}"
    assert s["counters"][key] == 10
    assert s["spans"]["switch"]["count"] == 1
    assert s["spans"]["switch"]["total_s"] == 3.0
    # JSON-serializable and stable
    assert json.dumps(s, sort_keys=True) == json.dumps(summary(_populated()),
                                                       sort_keys=True)


def test_chrome_trace_well_formed():
    reg = _populated()
    doc = chrome_trace(reg)
    assert isinstance(doc["traceEvents"], list)
    evs = doc["traceEvents"]
    meta = [e for e in evs if e["ph"] == "M"]
    spans = [e for e in evs if e["ph"] == "X"]
    assert len(spans) == 5
    for e in spans:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
        assert e["ts"] >= 0 and e["dur"] >= 0
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert "0:cell" in names
    threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert {"scheduler", "n0", "n0.vmm"} <= threads
    # switch span is in µs
    sw = next(e for e in spans if e["name"] == "switch")
    assert sw["dur"] == 3.0e6
    # enclosing spans precede enclosed at equal start
    ts0 = [e for e in spans if e["ts"] == 0.0]
    assert ts0[0]["name"] == "switch"


def test_chrome_trace_roundtrip(tmp_path):
    reg = _populated()
    p = write_chrome_trace(reg, tmp_path / "t.json")
    doc = json.loads(p.read_text())
    assert doc["displayTimeUnit"] == "ms"
    spans = load_spans(p)
    assert len(spans) == 5
    assert {s.name for s in spans} == {
        "switch", "drain", "page_out", "page_in_prefetch", "demand_fill"
    }
    sw = next(s for s in spans if s.name == "switch")
    assert sw.duration == 3.0


def test_jsonl_roundtrip(tmp_path):
    reg = _populated()
    p = write_jsonl(reg, tmp_path / "t.jsonl")
    lines = [json.loads(l) for l in p.read_text().splitlines() if l.strip()]
    types = {l["type"] for l in lines}
    assert types == {"counter", "gauge", "histogram", "span"}
    spans = load_spans(p)
    assert len(spans) == 5


def test_phase_breakdown_orders_and_shares():
    reg = _populated()
    rows = phase_breakdown(reg)
    phases = [r["phase"] for r in rows]
    assert phases == list(PHASE_ORDER)
    by = {r["phase"]: r for r in rows}
    # share is relative to the switch total when switch spans exist
    assert by["switch"]["share"] == 1.0
    assert abs(by["page_out"]["share"] - 1.0 / 3.0) < 1e-12
    assert by["drain"]["total_s"] == 0.0
    assert by["page_in_prefetch"]["mean_s"] == 2.0


def test_phase_breakdown_run_filter():
    reg = Registry()
    r1 = reg.begin_run("a")
    reg.span("switch", "scheduler", 0.0, 1.0)
    reg.end_run()
    r2 = reg.begin_run("b")
    reg.span("switch", "scheduler", 0.0, 5.0)
    reg.end_run()
    all_rows = phase_breakdown(reg)
    assert all_rows[0]["count"] == 2
    only = phase_breakdown(reg, run=r2)
    assert only[0]["count"] == 1
    assert only[0]["total_s"] == 5.0


def test_phase_breakdown_no_switch_uses_grand_total():
    reg = Registry()
    reg.span("demand_fill", "n0", 0.0, 1.0)
    reg.span("demand_fill", "n0", 1.0, 4.0)
    rows = phase_breakdown(reg)
    assert rows[0]["share"] == 1.0


def test_render_phase_table():
    reg = _populated()
    out = render_phase_table(phase_breakdown(reg))
    for phase in PHASE_ORDER:
        assert phase in out
    assert "100.0%" in out
    assert render_phase_table([]).endswith("<no spans recorded>")


def test_empty_registry_exports():
    reg = Registry()
    s = summary(reg)
    assert s == {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
    doc = chrome_trace(reg)
    assert doc["traceEvents"] == []
    assert phase_breakdown(reg) == []
