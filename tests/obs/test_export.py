"""Tests for the telemetry exporters."""

import json

from repro.obs import (
    PHASE_ORDER,
    Registry,
    chrome_trace,
    load_spans,
    phase_breakdown,
    render_counter_table,
    render_phase_table,
    summary,
    write_chrome_trace,
    write_jsonl,
)


def _populated() -> Registry:
    reg = Registry()
    rid = reg.begin_run("cell")
    reg.counter("disk_pages", node="n0", op="read").inc(10)
    reg.counter("disk_pages", node="n0", op="write").inc(4)
    reg.gauge("free", node="n0").set(7)
    reg.histogram("svc", node="n0").observe(0.5)
    reg.span("switch", "scheduler", 0.0, 3.0, in_job="a")
    reg.span("drain", "n0", 0.0, 0.0)
    reg.span("page_out", "n0", 0.0, 1.0)
    reg.span("page_in_prefetch", "n0", 1.0, 3.0)
    reg.span("demand_fill", "n0.vmm", 3.0, 4.0, pid=1)
    reg.end_run()
    return reg


def test_summary_shape_and_determinism():
    reg = _populated()
    s = summary(reg)
    assert set(s) == {"counters", "gauges", "histograms", "spans"}
    run = f"0:cell"
    key = f"disk_pages{{node=n0,op=read,run={run}}}"
    assert s["counters"][key] == 10
    assert s["spans"]["switch"]["count"] == 1
    assert s["spans"]["switch"]["total_s"] == 3.0
    # JSON-serializable and stable
    assert json.dumps(s, sort_keys=True) == json.dumps(summary(_populated()),
                                                       sort_keys=True)


def test_chrome_trace_well_formed():
    reg = _populated()
    doc = chrome_trace(reg)
    assert isinstance(doc["traceEvents"], list)
    evs = doc["traceEvents"]
    meta = [e for e in evs if e["ph"] == "M"]
    spans = [e for e in evs if e["ph"] == "X"]
    assert len(spans) == 5
    for e in spans:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
        assert e["ts"] >= 0 and e["dur"] >= 0
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert "0:cell" in names
    threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert {"scheduler", "n0", "n0.vmm"} <= threads
    # switch span is in µs
    sw = next(e for e in spans if e["name"] == "switch")
    assert sw["dur"] == 3.0e6
    # enclosing spans precede enclosed at equal start
    ts0 = [e for e in spans if e["ts"] == 0.0]
    assert ts0[0]["name"] == "switch"


def test_chrome_trace_roundtrip(tmp_path):
    reg = _populated()
    p = write_chrome_trace(reg, tmp_path / "t.json")
    doc = json.loads(p.read_text())
    assert doc["displayTimeUnit"] == "ms"
    spans = load_spans(p)
    assert len(spans) == 5
    assert {s.name for s in spans} == {
        "switch", "drain", "page_out", "page_in_prefetch", "demand_fill"
    }
    sw = next(s for s in spans if s.name == "switch")
    assert sw.duration == 3.0


def test_jsonl_roundtrip(tmp_path):
    reg = _populated()
    p = write_jsonl(reg, tmp_path / "t.jsonl")
    lines = [json.loads(l) for l in p.read_text().splitlines() if l.strip()]
    types = {l["type"] for l in lines}
    assert types == {"counter", "gauge", "histogram", "span"}
    spans = load_spans(p)
    assert len(spans) == 5


def test_phase_breakdown_orders_and_shares():
    reg = _populated()
    rows = phase_breakdown(reg)
    phases = [r["phase"] for r in rows]
    assert phases == list(PHASE_ORDER)
    by = {r["phase"]: r for r in rows}
    # share is relative to the switch total when switch spans exist
    assert by["switch"]["share"] == 1.0
    assert abs(by["page_out"]["share"] - 1.0 / 3.0) < 1e-12
    assert by["drain"]["total_s"] == 0.0
    assert by["page_in_prefetch"]["mean_s"] == 2.0


def test_phase_breakdown_run_filter():
    reg = Registry()
    r1 = reg.begin_run("a")
    reg.span("switch", "scheduler", 0.0, 1.0)
    reg.end_run()
    r2 = reg.begin_run("b")
    reg.span("switch", "scheduler", 0.0, 5.0)
    reg.end_run()
    all_rows = phase_breakdown(reg)
    assert all_rows[0]["count"] == 2
    only = phase_breakdown(reg, run=r2)
    assert only[0]["count"] == 1
    assert only[0]["total_s"] == 5.0


def test_phase_breakdown_no_switch_uses_grand_total():
    reg = Registry()
    reg.span("demand_fill", "n0", 0.0, 1.0)
    reg.span("demand_fill", "n0", 1.0, 4.0)
    rows = phase_breakdown(reg)
    assert rows[0]["share"] == 1.0


def test_render_phase_table():
    reg = _populated()
    out = render_phase_table(phase_breakdown(reg))
    for phase in PHASE_ORDER:
        assert phase in out
    assert "100.0%" in out
    assert render_phase_table([]).endswith("<no spans recorded>")


def test_empty_registry_exports():
    reg = Registry()
    s = summary(reg)
    assert s == {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
    doc = chrome_trace(reg)
    assert doc["traceEvents"] == []
    assert phase_breakdown(reg) == []


def test_phase_breakdown_zero_span_run():
    # a run that opened and closed without recording any spans must not
    # perturb the breakdown of runs that did
    reg = Registry()
    reg.begin_run("empty")
    reg.end_run()
    reg.begin_run("real")
    reg.span("switch", "scheduler", 0.0, 2.0)
    reg.end_run()
    rows = phase_breakdown(reg)
    assert [r["phase"] for r in rows] == ["switch"]
    assert rows[0]["count"] == 1 and rows[0]["share"] == 1.0
    out = render_phase_table(rows)
    assert "switch" in out and "100.0%" in out


def test_phase_breakdown_single_phase_run():
    # only one (non-switch) phase recorded: share falls back to the
    # grand total and the table still renders a complete 100% row
    reg = Registry()
    reg.begin_run("cell")
    reg.span("demand_fill", "n0.vmm", 0.0, 1.5)
    reg.span("demand_fill", "n0.vmm", 2.0, 2.5)
    reg.end_run()
    rows = phase_breakdown(reg)
    assert len(rows) == 1
    assert rows[0]["phase"] == "demand_fill"
    assert rows[0]["count"] == 2
    assert rows[0]["total_s"] == 2.0
    assert rows[0]["share"] == 1.0
    assert "demand_fill" in render_phase_table(rows)


def test_policy_labels_with_slashes_keep_their_track():
    # the paper policy label "so/ao/ai/bg" contains "/"; the trace
    # exporter splits process/thread at the LAST separator so the
    # policy stays intact on the process side
    reg = Registry()
    reg.begin_run("0:LU gang:so/ao/ai/bg")
    reg.span("switch", "scheduler", 0.0, 1.0)
    reg.span("page_out", "n0", 0.0, 0.5)
    reg.end_run()
    doc = chrome_trace(reg)
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    procs = {e["args"]["name"] for e in meta
             if e["name"] == "process_name"}
    threads = {e["args"]["name"] for e in meta
               if e["name"] == "thread_name"}
    assert procs == {"0:0:LU gang:so/ao/ai/bg"}
    assert threads == {"scheduler", "n0"}
    rows = phase_breakdown(reg, run="0:0:LU gang:so/ao/ai/bg")
    assert [r["phase"] for r in rows] == ["switch", "page_out"]


def test_render_counter_table_prefix_filter():
    reg = Registry()
    reg.counter("cellcache_hits").inc(3)
    reg.counter("supervisor_retries").inc(1)
    reg.counter("disk_pages", op="read").inc(7)
    out = render_counter_table(reg, prefixes=("cellcache_", "supervisor_"),
                               title="Host-side counters")
    assert "Host-side counters" in out
    assert "cellcache_hits" in out
    assert "supervisor_retries" in out
    assert "disk_pages" not in out
    # no filter -> everything
    assert "disk_pages" in render_counter_table(reg)
    # nothing matches -> sentinel text
    empty = render_counter_table(reg, prefixes=("nope_",))
    assert empty.endswith("<no matching counters>")
