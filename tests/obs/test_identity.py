"""The zero-perturbation guarantee: telemetry must not change a run.

Instrumented and uninstrumented runs of the same config must be
bit-for-bit identical in makespan, event counts and page traffic —
telemetry only reads ``env.now``, never creates simulation events.
"""

import json

import pytest

from repro.experiments.runner import GangConfig, run_cell, run_experiment
from repro.obs import Registry, set_default

CFG = GangConfig("LU", "C", nprocs=2, policy="so/ao/ai/bg", seed=1,
                 scale=0.05)


@pytest.fixture(autouse=True)
def _no_default_registry():
    set_default(None)
    yield
    set_default(None)


def test_obs_run_is_bit_for_bit_identical():
    base = run_experiment(CFG)
    reg = Registry()
    obs = run_experiment(CFG, obs=reg)
    assert obs.makespan == base.makespan
    assert obs.events_processed == base.events_processed
    assert obs.pages_read == base.pages_read
    assert obs.pages_written == base.pages_written
    assert obs.switch_count == base.switch_count
    assert obs.completions == base.completions
    assert obs.vmm_stats == base.vmm_stats
    assert base.obs is None
    assert obs.obs is reg


def test_registry_populated_with_mechanism_counters_and_spans():
    reg = Registry()
    run_experiment(CFG, obs=reg)
    for name in (
        "switches_total", "job_switches",
        "so_selective_evictions",
        "ao_batches", "ao_pages_evicted",
        "ai_runs", "ai_pages_replayed",
        "bg_bursts", "bg_pages_written",
        "vmm_major_faults", "vmm_pages_swapped_in",
        "disk_requests", "disk_pages",
    ):
        assert reg.value(name) > 0, name
    span_names = {s.name for s in reg.spans}
    assert {"switch", "drain", "page_out", "page_in_prefetch"} <= span_names
    # node-phase spans nest inside the run's switch windows
    for s in reg.spans_named("page_out"):
        assert s.end >= s.start


def test_demand_fill_spans_under_plain_lru():
    reg = Registry()
    run_experiment(GangConfig("LU", "C", nprocs=2, policy="lru", seed=1,
                              scale=0.05), obs=reg)
    fills = reg.spans_named("demand_fill")
    assert fills
    assert all(s.duration > 0 for s in fills)
    assert reg.value("so_selective_evictions") == 0
    assert reg.value("ai_runs") == 0


def test_default_registry_used_when_installed():
    reg = Registry()
    set_default(reg)
    res = run_experiment(CFG)
    assert res.obs is reg
    assert reg.value("switches_total") > 0


def test_multi_cell_runs_stay_separable():
    reg = Registry()
    r1 = run_experiment(CFG, obs=reg)
    r2 = run_experiment(
        GangConfig("LU", "C", nprocs=2, policy="lru", seed=1, scale=0.05),
        obs=reg,
    )
    runs = {dict(c.labels).get("run") for c in reg.counters()}
    runs.discard(None)
    assert len(runs) == 2
    per_run = [reg.value("switches_total", run=r) for r in sorted(runs)]
    assert sum(per_run) == reg.value("switches_total")
    assert all(v > 0 for v in per_run)


def test_fault_summary_registry_matches_scrape():
    base = run_experiment(CFG)
    obs = run_experiment(CFG, obs=Registry())
    assert obs.fault_summary == base.fault_summary


def test_run_cell_quarantines_obs_summary():
    plain = run_cell(CFG)
    with_obs = run_cell(CFG, obs_enabled=True)
    assert "obs" not in plain["_perf"]
    assert "obs" in with_obs["_perf"]
    strip = lambda d: {k: v for k, v in d.items() if k != "_perf"}
    assert (json.dumps(strip(plain), sort_keys=True, default=str)
            == json.dumps(strip(with_obs), sort_keys=True, default=str))
    obs_sum = with_obs["_perf"]["obs"]
    assert obs_sum["spans"]["switch"]["count"] == plain["switch_count"]
