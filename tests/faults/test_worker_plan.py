"""Unit tests for host-level worker fault injection
(repro.faults.worker.WorkerFaultPlan)."""

import pytest

from repro.faults.worker import WorkerFaultPlan


def test_default_plan_is_inert():
    plan = WorkerFaultPlan()
    assert not plan.active
    assert all(plan.decide(i, a) is None
               for i in range(10) for a in range(3))
    assert plan.injections(10) == {}


def test_rate_validation():
    with pytest.raises(ValueError, match="crash_rate"):
        WorkerFaultPlan(crash_rate=1.5)
    with pytest.raises(ValueError, match="hang_rate"):
        WorkerFaultPlan(hang_rate=-0.1)
    with pytest.raises(ValueError, match="slow_start_rate"):
        WorkerFaultPlan(slow_start_rate=2.0)
    with pytest.raises(ValueError, match="hang_s"):
        WorkerFaultPlan(hang_s=0.0)
    with pytest.raises(ValueError, match="slow_start_s"):
        WorkerFaultPlan(slow_start_s=-1.0)


def test_decisions_are_deterministic():
    a = WorkerFaultPlan(crash_rate=0.4, hang_rate=0.2, seed=7)
    b = WorkerFaultPlan(crash_rate=0.4, hang_rate=0.2, seed=7)
    for i in range(50):
        for attempt in range(4):
            assert a.decide(i, attempt) == b.decide(i, attempt)


def test_seed_changes_schedule():
    schedules = {
        frozenset(WorkerFaultPlan(crash_rate=0.5, seed=s)
                  .injections(40).items())
        for s in range(5)
    }
    assert len(schedules) > 1


def test_attempt_changes_draw():
    # a crash on attempt 0 must not deterministically recur forever:
    # somewhere in a modest window the retry draw clears
    plan = WorkerFaultPlan(crash_rate=0.5, seed=3)
    for index in plan.injections(20):
        assert any(plan.decide(index, a) != "crash" for a in range(1, 16))


def test_full_rate_always_fires():
    plan = WorkerFaultPlan(crash_rate=1.0, seed=0)
    assert all(plan.decide(i, a) == "crash"
               for i in range(10) for a in range(3))


def test_priority_crash_over_hang_over_slow():
    plan = WorkerFaultPlan(crash_rate=1.0, hang_rate=1.0,
                           slow_start_rate=1.0)
    assert plan.decide(0, 0) == "crash"
    plan = WorkerFaultPlan(hang_rate=1.0, slow_start_rate=1.0)
    assert plan.decide(0, 0) == "hang"
    plan = WorkerFaultPlan(slow_start_rate=1.0)
    assert plan.decide(0, 0) == "slow"


def test_injections_matches_decide():
    plan = WorkerFaultPlan(crash_rate=0.3, hang_rate=0.3, seed=11)
    sched = plan.injections(30)
    for i in range(30):
        assert sched.get(i) == plan.decide(i, 0)


def test_parse_round_trip():
    plan = WorkerFaultPlan.parse("crash=0.3, hang=0.1, slow=0.2, "
                                 "hang_s=5, slow_s=0.01, seed=7")
    assert plan == WorkerFaultPlan(
        crash_rate=0.3, hang_rate=0.1, slow_start_rate=0.2,
        hang_s=5.0, slow_start_s=0.01, seed=7,
    )
    assert WorkerFaultPlan.parse("") == WorkerFaultPlan()


def test_parse_rejects_bad_specs():
    with pytest.raises(ValueError, match="chaos spec"):
        WorkerFaultPlan.parse("bogus=1")
    with pytest.raises(ValueError, match="chaos spec"):
        WorkerFaultPlan.parse("crash")
    with pytest.raises(ValueError, match="chaos spec"):
        WorkerFaultPlan.parse("crash=lots")
    with pytest.raises(ValueError, match="crash_rate"):
        WorkerFaultPlan.parse("crash=7")


def test_plan_is_picklable():
    import pickle

    plan = WorkerFaultPlan(crash_rate=0.25, seed=9)
    assert pickle.loads(pickle.dumps(plan)) == plan
