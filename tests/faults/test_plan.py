"""Unit tests for the fault plan: validation, determinism, transparency."""

import pytest

from repro.faults import FAULT_FREE, FaultPlan, FaultRates
from repro.sim import RngStreams


def test_rates_reject_bad_probabilities():
    with pytest.raises(ValueError):
        FaultRates(disk_error_rate=-0.1)
    with pytest.raises(ValueError):
        FaultRates(crash_rate=1.5)
    with pytest.raises(ValueError):
        FaultRates(record_loss_rate=2.0)


def test_rates_reject_sub_unity_factors():
    with pytest.raises(ValueError):
        FaultRates(disk_latency_factor=0.5)
    with pytest.raises(ValueError):
        FaultRates(straggler_factor=0.0)


def test_active_flag():
    assert not FAULT_FREE.active
    assert not FaultRates().active
    assert FaultRates(disk_error_rate=0.01).active
    assert FaultRates(crash_rate=1.0).active
    # severity factors alone never activate a plan
    assert not FaultRates(disk_latency_factor=20.0).active


def test_zero_rate_plan_never_draws():
    rngs = RngStreams(0)
    plan = FaultPlan(FAULT_FREE, rngs)
    for _ in range(100):
        assert plan.disk_error("d0") is False
        assert plan.disk_latency_factor("d0") == 1.0
        assert plan.node_crash("n0") is False
        assert plan.node_straggle("n0") == 1.0
        assert plan.record_lost("r0") is False
        assert plan.record_corrupt("r0") is False
    assert sum(plan.counters.values()) == 0
    # transparency: no stream was ever materialised, so nothing about
    # the run's randomness changed
    assert not rngs.created


def test_same_seed_same_schedule():
    rates = FaultRates(disk_error_rate=0.3, crash_rate=0.2,
                       straggler_rate=0.4)
    a = FaultPlan(rates, RngStreams(42))
    b = FaultPlan(rates, RngStreams(42))
    seq_a = [(a.disk_error("d"), a.node_crash("n"), a.node_straggle("n"))
             for _ in range(200)]
    seq_b = [(b.disk_error("d"), b.node_crash("n"), b.node_straggle("n"))
             for _ in range(200)]
    assert seq_a == seq_b
    assert a.counters == b.counters
    assert sum(a.counters.values()) > 0


def test_components_draw_independent_streams():
    rates = FaultRates(disk_error_rate=0.5)
    plan = FaultPlan(rates, RngStreams(7))
    a = [plan.disk_error("disk-a") for _ in range(64)]
    b = [plan.disk_error("disk-b") for _ in range(64)]
    assert a != b  # distinct named streams, not one shared sequence


def test_counters_track_hits_by_kind():
    plan = FaultPlan(FaultRates(disk_error_rate=1.0, crash_rate=1.0))
    plan.disk_error("d")
    plan.disk_error("d")
    plan.node_crash("n")
    assert plan.counters["disk_errors"] == 2
    assert plan.counters["node_crashes"] == 1
    assert plan.counters["records_lost"] == 0


def test_severity_factors_returned_on_hit():
    plan = FaultPlan(FaultRates(disk_latency_rate=1.0,
                                disk_latency_factor=6.0,
                                straggler_rate=1.0, straggler_factor=2.5))
    assert plan.disk_latency_factor("d") == 6.0
    assert plan.node_straggle("n") == 2.5


def test_int_seed_convenience():
    plan = FaultPlan(FaultRates(disk_error_rate=1.0), 3)
    assert plan.disk_error("d") is True
