"""Unit tests for the generic synthetic workloads."""

import numpy as np
import pytest

from repro.workloads import (
    RandomAccessWorkload,
    SequentialSweepWorkload,
    StridedWorkload,
)
from repro.workloads.base import expand_phase


def rng():
    return np.random.default_rng(42)


def all_pages(workload, seed=42):
    out = []
    for phase in workload.phases(np.random.default_rng(seed)):
        out.append(expand_phase(phase)[0])
    return np.concatenate(out)


def test_workload_validation():
    with pytest.raises(ValueError):
        SequentialSweepWorkload(0, 1)
    with pytest.raises(ValueError):
        SequentialSweepWorkload(10, 0)
    with pytest.raises(ValueError):
        SequentialSweepWorkload(10, 1, dirty_fraction=2.0)
    with pytest.raises(ValueError):
        RandomAccessWorkload(10, 1, chunk_pages=0)
    with pytest.raises(ValueError):
        StridedWorkload(10, 1, stride=1)


def test_sweep_covers_footprint_each_iteration():
    w = SequentialSweepWorkload(1000, iterations=2, max_phase_pages=256,
                                init_touch=False)
    phases = list(w.phases(rng()))
    per_iter = sum(p.npages for p in phases) / 2
    assert per_iter == 1000


def test_sweep_dirty_fraction():
    w = SequentialSweepWorkload(1000, 1, dirty_fraction=0.25,
                                init_touch=False)
    dirty = 0
    for p in w.phases(rng()):
        pages, mask = expand_phase(p)
        dirty += int(mask.sum())
    assert dirty == 250


def test_sweep_is_sequential():
    w = SequentialSweepWorkload(512, 1, init_touch=False,
                                max_phase_pages=128)
    pages = all_pages(w)
    assert np.array_equal(pages, np.arange(512))


def test_init_touch_prepends_footprint():
    w = SequentialSweepWorkload(100, 1, init_touch=True, max_phase_pages=64)
    pages = all_pages(w)
    assert np.array_equal(pages[:100], np.arange(100))


def test_random_covers_footprint_but_not_in_order():
    w = RandomAccessWorkload(1024, 1, chunk_pages=32, init_touch=False)
    pages = all_pages(w)
    assert set(pages.tolist()) == set(range(1024))
    assert not np.array_equal(pages, np.arange(1024))


def test_random_is_seed_deterministic():
    w1 = RandomAccessWorkload(512, 2, init_touch=False)
    w2 = RandomAccessWorkload(512, 2, init_touch=False)
    assert np.array_equal(all_pages(w1, seed=7), all_pages(w2, seed=7))
    assert not np.array_equal(all_pages(w1, seed=7), all_pages(w1, seed=8))


def test_random_respects_max_phase_pages():
    w = RandomAccessWorkload(4096, 1, chunk_pages=64, max_phase_pages=256,
                             init_touch=False)
    for p in w.phases(rng()):
        assert p.npages <= 256 + 64  # chunk granularity slack


def test_strided_touches_every_page_once_per_iteration():
    w = StridedWorkload(640, 1, stride=4, chunk_pages=16, init_touch=False)
    pages = all_pages(w)
    assert sorted(pages.tolist()) == list(range(640))
    # first pass visits chunks 0, 4, 8, ... (stride jumps)
    assert pages[16] == 64


def test_barrier_flags_for_parallel_runs():
    w = SequentialSweepWorkload(256, 2, barrier_per_iteration=True,
                                comm_s=0.5, init_touch=False,
                                max_phase_pages=64)
    phases = list(w.phases(rng()))
    barriers = [p for p in phases if p.barrier]
    assert len(barriers) == 2  # one per iteration
    assert all(p.comm_s == 0.5 for p in barriers)


def test_total_phases_counts():
    w = SequentialSweepWorkload(256, 3, init_touch=False, max_phase_pages=64)
    assert w.total_phases(rng()) == 3 * 4
