"""Unit + property tests for the phase/trace model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import PageRange, Phase, chunk_ranges, expand_phase


def test_page_range_validation():
    with pytest.raises(ValueError):
        PageRange(-1, 5)
    with pytest.raises(ValueError):
        PageRange(5, 5)
    with pytest.raises(ValueError):
        PageRange(5, 3)


def test_page_range_pages():
    r = PageRange(3, 6, dirty=True)
    assert r.npages == 3
    assert list(r.pages()) == [3, 4, 5]


def test_phase_validation():
    with pytest.raises(ValueError):
        Phase((PageRange(0, 1),), cpu_s=-1.0)
    with pytest.raises(ValueError):
        Phase((PageRange(0, 1),), cpu_s=1.0, comm_s=-1.0)


def test_phase_npages():
    p = Phase((PageRange(0, 10), PageRange(20, 25)), cpu_s=1.0)
    assert p.npages == 15


def test_expand_simple():
    p = Phase((PageRange(0, 3, dirty=True), PageRange(10, 12)), cpu_s=0.0)
    pages, dirty = expand_phase(p)
    assert list(pages) == [0, 1, 2, 10, 11]
    assert list(dirty) == [True, True, True, False, False]


def test_expand_overlap_ors_dirty():
    p = Phase((PageRange(0, 4, dirty=False), PageRange(2, 6, dirty=True)),
              cpu_s=0.0)
    pages, dirty = expand_phase(p)
    assert list(pages) == [0, 1, 2, 3, 4, 5]
    assert list(dirty) == [False, False, True, True, True, True]


def test_expand_empty():
    pages, dirty = expand_phase(Phase((), cpu_s=0.0))
    assert pages.size == 0 and dirty.size == 0


def test_chunk_ranges_respects_max_pages():
    phases = chunk_ranges([PageRange(0, 100, dirty=True)], max_pages=30,
                          cpu_s=10.0)
    assert all(p.npages <= 30 for p in phases)
    total = sum(p.npages for p in phases)
    assert total == 100


def test_chunk_ranges_distributes_cpu():
    phases = chunk_ranges([PageRange(0, 100)], max_pages=50, cpu_s=10.0)
    assert sum(p.cpu_s for p in phases) == pytest.approx(10.0)


def test_chunk_ranges_barrier_only_on_last():
    phases = chunk_ranges([PageRange(0, 100)], max_pages=30, cpu_s=1.0,
                          barrier=True, comm_s=0.5)
    assert [p.barrier for p in phases] == [False] * (len(phases) - 1) + [True]
    assert phases[-1].comm_s == 0.5
    assert all(p.comm_s == 0.0 for p in phases[:-1])


def test_chunk_ranges_bad_max():
    with pytest.raises(ValueError):
        chunk_ranges([PageRange(0, 10)], max_pages=0, cpu_s=1.0)


def test_chunk_preserves_touch_order():
    phases = chunk_ranges(
        [PageRange(50, 60), PageRange(0, 10)], max_pages=8, cpu_s=1.0
    )
    seq = np.concatenate([expand_phase(p)[0] for p in phases])
    # the 50..59 range comes before 0..9 in touch order
    assert list(seq[:10]) == list(range(50, 60))


@given(
    st.lists(
        st.tuples(st.integers(0, 400), st.integers(1, 80), st.booleans()),
        min_size=1, max_size=8,
    ),
    st.integers(1, 64),
)
@settings(max_examples=60, deadline=None)
def test_property_chunking_preserves_pages_and_cpu(raw, max_pages):
    """Chunking never loses/duplicates pages within a range and CPU sums."""
    ranges = [PageRange(s, s + ln, d) for s, ln, d in raw]
    phases = chunk_ranges(ranges, max_pages=max_pages, cpu_s=7.0)
    assert all(p.npages <= max_pages for p in phases)
    assert sum(p.npages for p in phases) == sum(r.npages for r in ranges)
    assert sum(p.cpu_s for p in phases) == pytest.approx(7.0)
    # dirty page-count is conserved (pieces keep their source's flag)
    dirty_in = sum(r.npages for r in ranges if r.dirty)
    dirty_out = sum(
        piece.npages for p in phases for piece in p.ranges if piece.dirty
    )
    assert dirty_out == dirty_in
