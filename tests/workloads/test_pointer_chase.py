"""Tests for the pointer-chase (worst-case) workload."""

import numpy as np
import pytest

from repro.workloads import PointerChaseWorkload
from repro.workloads.base import expand_phase


def rng():
    return np.random.default_rng(12)


def test_validation():
    with pytest.raises(ValueError):
        PointerChaseWorkload(100, 1, dirty_fraction=1.5)
    with pytest.raises(ValueError):
        PointerChaseWorkload(100, 1, pages_per_phase=0)


def test_each_iteration_touches_every_page_once():
    w = PointerChaseWorkload(512, 1, init_touch=False)
    pages = np.concatenate(
        [expand_phase(p)[0] for p in w.phases(rng())]
    )
    assert sorted(pages.tolist()) == list(range(512))


def test_order_is_random_not_sequential():
    w = PointerChaseWorkload(512, 1, init_touch=False)
    pages = np.concatenate([expand_phase(p)[0] for p in w.phases(rng())])
    assert not np.array_equal(pages, np.arange(512))
    # truly page-granular: almost no adjacent-page runs
    adjacent = int(np.count_nonzero(np.diff(pages) == 1))
    assert adjacent < 20


def test_dirty_fraction_respected():
    w = PointerChaseWorkload(1000, 1, dirty_fraction=0.3, init_touch=False)
    dirty = 0
    for p in w.phases(rng()):
        _, mask = expand_phase(p)
        dirty += int(mask.sum())
    assert dirty == 300


def test_adaptive_still_wins_on_worst_case():
    """Even with zero spatial locality, the recorded-replay stack beats
    plain LRU (reads happen in slot order, not access order)."""
    from repro.cluster import Node
    from repro.gang import GangScheduler, Job
    from repro.sim import Environment, RngStreams

    def makespan(policy):
        env = Environment()
        node = Node.build(env, "n0", 6.0, policy)
        rngs = RngStreams(13)
        jobs = []
        for j in range(2):
            w = PointerChaseWorkload(1100, 3, cpu_per_page_s=2e-3,
                                     dirty_fraction=0.6,
                                     max_phase_pages=256,
                                     init_touch=False, name=f"j{j}")
            jobs.append(Job(f"j{j}", [node], [w], rngs.spawn(f"j{j}")))
        GangScheduler(env, jobs, quantum_s=3.0).start()
        env.run()
        return max(j.completed_at for j in jobs)

    assert makespan("so/ao/ai/bg") < makespan("lru")
