"""Tests for the FT/EP extension benchmarks."""

import numpy as np
import pytest

from repro.mem.params import pages_to_mb
from repro.workloads import make_npb
from repro.workloads.base import expand_phase


def rng():
    return np.random.default_rng(0)


def test_ep_footprint_tiny():
    """EP is the no-memory-pressure control."""
    assert pages_to_mb(make_npb("EP", "C").footprint_pages) <= 25


def test_ep_footprint_barely_shrinks_with_nodes():
    serial = make_npb("EP", "C", 1).footprint_pages
    four = make_npb("EP", "C", 4).footprint_pages
    assert four > serial * 0.5  # replicated state, not partitioned


def test_ft_iteration_covers_footprint():
    w = make_npb("FT", "A", max_phase_pages=4096)
    touched = set()
    for phase in w.iteration_phases(0, rng()):
        pages, _ = expand_phase(phase)
        touched.update(pages.tolist())
    assert touched == set(range(w.footprint_pages))


def test_ft_transpose_is_strided():
    """The transpose pass visits chunk 0 then chunk 8 (stride jumps)."""
    w = make_npb("FT", "A", max_phase_pages=100000)
    phases = list(w.iteration_phases(0, rng()))
    transpose = [p for p in phases if "transpose" in p.label]
    assert transpose
    pages, _ = expand_phase(transpose[0])
    # after the first 64-page chunk the next visited page jumps by 8*64
    assert pages[64] == 64 * 8


def test_ft_heavy_allto_all_comm():
    two = make_npb("FT", "C", 2)
    assert two.comm_s > make_npb("CG", "C", 2).comm_s


def test_ep_under_gang_has_no_paging_overhead():
    """EP never stresses memory: gang scheduling it is free."""
    from repro.experiments import GangConfig, run_modes
    from repro.metrics import overhead_fraction

    cfg = GangConfig("EP", "B", nprocs=1, scale=0.2)
    res = run_modes(cfg, ["lru"])
    oh = overhead_fraction(res["lru"].makespan, res["batch"].makespan)
    assert oh < 0.02
    assert res["lru"].pages_read == 0


def test_ft_pages_heavily_under_gang():
    from repro.experiments import GangConfig, run_modes
    from repro.metrics import overhead_fraction, paging_reduction

    cfg = GangConfig("FT", "B", nprocs=1, scale=0.1)
    res = run_modes(cfg, ["lru", "so/ao/ai/bg"])
    b = res["batch"].makespan
    oh = overhead_fraction(res["lru"].makespan, b)
    assert oh > 0.1
    red = paging_reduction(res["lru"].makespan,
                           res["so/ao/ai/bg"].makespan, b)
    assert red > 0.3
