"""Unit tests for the NPB2 benchmark models."""

import numpy as np
import pytest

from repro.mem.params import mb_to_pages, pages_to_mb
from repro.workloads import NPB_BENCHMARKS, make_npb
from repro.workloads.base import expand_phase


def rng():
    return np.random.default_rng(0)


#: the five programs the paper evaluates
PAPER_SET = {"LU", "SP", "CG", "IS", "MG"}


def test_paper_benchmarks_present_plus_extensions():
    assert PAPER_SET <= set(NPB_BENCHMARKS)
    # FT and EP are provided as extensions beyond the paper's set
    assert {"FT", "EP"} <= set(NPB_BENCHMARKS)


def test_factory_case_insensitive():
    w = make_npb("lu", "b")
    assert w.name == "LU.B.1"


def test_factory_unknown_name():
    with pytest.raises(ValueError, match="unknown NPB benchmark"):
        make_npb("BT", "B")


def test_unknown_class_rejected():
    with pytest.raises(ValueError, match="no class"):
        make_npb("LU", "D")


def test_sp_does_not_run_on_two_processes():
    """§4.2: 'SP is included only for 4 machines since it does not
    compile for 2 machines.'"""
    with pytest.raises(ValueError, match="does not run on 2"):
        make_npb("SP", "C", nprocs=2)
    make_npb("SP", "C", nprocs=4)  # fine


def test_lu_class_c_four_nodes_matches_paper_anchor():
    """§4: 'the data class C of LU uses only 188 Mbytes when running on
    4 machines in parallel.'"""
    w = make_npb("LU", "C", nprocs=4)
    assert pages_to_mb(w.footprint_pages) == pytest.approx(187.5, abs=2.0)


def test_class_b_footprints_within_paper_band():
    """§4.1 footnote: class B programs require 188–400 MB (applies to
    the paper's five programs, not the FT/EP extensions)."""
    for name in PAPER_SET:
        w = make_npb(name, "B")
        mb = pages_to_mb(w.footprint_pages)
        assert 180 <= mb <= 410, f"{name}.B footprint {mb} MB out of band"


def test_parallel_footprint_shrinks_with_nodes():
    for name in ("LU", "CG", "IS", "MG"):
        two = make_npb(name, "C", 2).footprint_pages
        four = make_npb(name, "C", 4).footprint_pages
        serial = make_npb(name, "C", 1).footprint_pages
        assert serial > two > four


def test_cg_four_nodes_fits_under_350mb_pair():
    """§4.2: CG on 4 machines shrinks so much that paging does not
    occur even with the 350 MB memory lock."""
    per_node = pages_to_mb(make_npb("CG", "C", 4).footprint_pages)
    assert 2 * per_node <= 355


def test_iteration_covers_footprint():
    for name in NPB_BENCHMARKS:
        w = make_npb(name, "A", max_phase_pages=4096)
        touched = set()
        for phase in w.iteration_phases(0, rng()):
            pages, _ = expand_phase(phase)
            touched.update(pages.tolist())
        assert touched == set(range(w.footprint_pages)), (
            f"{name} iteration misses pages"
        )


def test_phases_respect_max_phase_pages():
    for name in NPB_BENCHMARKS:
        w = make_npb(name, "A", max_phase_pages=2048)
        for phase in w.phases(rng()):
            assert phase.npages <= 2048 + 256, name  # chunk slack


def test_dirty_pages_match_fraction_roughly():
    # expected dirty share of *touches* per iteration: LU dirties 60 % of
    # each sweep; IS dirties the bucket region (60 % of the footprint)
    for name, frac in (("LU", 0.6), ("IS", 0.6)):
        w = make_npb(name, "A")
        dirty = total = 0
        for phase in w.iteration_phases(0, rng()):
            pages, mask = expand_phase(phase)
            total += pages.size
            dirty += int(mask.sum())
        assert dirty / total == pytest.approx(frac, abs=0.15), name


def test_parallel_runs_have_barriers_serial_do_not():
    serial = make_npb("LU", "A", 1)
    parallel = make_npb("LU", "A", 4)
    assert not any(p.barrier for p in serial.phases(rng()))
    assert any(p.barrier for p in parallel.phases(rng()))


def test_parallel_cpu_divided():
    serial = make_npb("LU", "B", 1)
    four = make_npb("LU", "B", 4)
    assert four.cpu_it_s == pytest.approx(serial.cpu_it_s / 4)


def test_comm_grows_with_node_count():
    two = make_npb("IS", "C", 2)
    four = make_npb("IS", "C", 4)
    assert 0 < two.comm_s < four.comm_s


def test_cg_matrix_order_is_shuffled_deterministically():
    w = make_npb("CG", "A")
    a = [expand_phase(p)[0][0] for p in w.iteration_phases(0, np.random.default_rng(5))]
    b = [expand_phase(p)[0][0] for p in w.iteration_phases(0, np.random.default_rng(5))]
    c = [expand_phase(p)[0][0] for p in w.iteration_phases(0, np.random.default_rng(6))]
    assert a == b
    assert a != c


def test_mg_levels_shrink():
    w = make_npb("MG", "A")
    labels = [p.label for p in w.iteration_phases(0, rng())]
    assert any("fine" in l for l in labels)
    assert any("lvl0" in l for l in labels)
