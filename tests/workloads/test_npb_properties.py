"""Property tests across the whole NPB configuration space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import NPB_BENCHMARKS, make_npb
from repro.workloads.base import expand_phase


def all_configs():
    for name, bench in NPB_BENCHMARKS.items():
        for klass in bench.class_mb:
            for nprocs in bench.valid_nprocs:
                if nprocs <= 4:  # keep test time bounded
                    yield name, klass, nprocs


CONFIGS = list(all_configs())


@pytest.mark.parametrize("name,klass,nprocs", CONFIGS)
def test_every_config_produces_valid_phases(name, klass, nprocs):
    w = make_npb(name, klass, nprocs, max_phase_pages=8192)
    rng = np.random.default_rng(1)
    total_cpu = 0.0
    touched = np.zeros(w.footprint_pages, dtype=bool)
    for phase in w.iteration_phases(0, rng):
        assert phase.cpu_s >= 0
        assert phase.comm_s >= 0
        assert phase.npages > 0
        pages, dirty = expand_phase(phase)
        assert pages.min() >= 0
        assert pages.max() < w.footprint_pages
        assert pages.size == dirty.size
        touched[pages] = True
        total_cpu += phase.cpu_s
    # one iteration touches the whole footprint and burns its CPU share
    assert touched.all(), f"{name}.{klass}@{nprocs} missed pages"
    assert total_cpu == pytest.approx(w.cpu_it_s, rel=0.02)


@pytest.mark.parametrize("name,klass,nprocs", CONFIGS)
def test_serial_configs_have_no_barriers(name, klass, nprocs):
    w = make_npb(name, klass, nprocs)
    rng = np.random.default_rng(2)
    has_barrier = any(p.barrier for p in w.iteration_phases(0, rng))
    assert has_barrier == (nprocs > 1), f"{name}.{klass}@{nprocs}"


@given(st.sampled_from(sorted(NPB_BENCHMARKS)),
       st.sampled_from(["A", "B", "C"]),
       st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_property_same_seed_same_phases(name, klass, seed):
    """Phase streams are pure functions of (config, seed)."""
    w1 = make_npb(name, klass)
    w2 = make_npb(name, klass)
    f1 = [
        (tuple(expand_phase(p)[0][:8].tolist()), round(p.cpu_s, 12))
        for p in w1.iteration_phases(0, np.random.default_rng(seed))
    ]
    f2 = [
        (tuple(expand_phase(p)[0][:8].tolist()), round(p.cpu_s, 12))
        for p in w2.iteration_phases(0, np.random.default_rng(seed))
    ]
    assert f1 == f2


def test_footprint_monotone_in_class():
    for name, bench in NPB_BENCHMARKS.items():
        a = make_npb(name, "A").footprint_pages
        b = make_npb(name, "B").footprint_pages
        c = make_npb(name, "C").footprint_pages
        assert a < b < c, name
