"""Tests for workload characterisation."""

import numpy as np
import pytest

from repro.workloads import make_npb
from repro.workloads.analysis import (
    WorkloadProfile,
    profile_workload,
    render_profiles,
)
from repro.workloads.synthetic import (
    RandomAccessWorkload,
    SequentialSweepWorkload,
)


def rng():
    return np.random.default_rng(6)


def test_sweep_profile_exact_numbers():
    w = SequentialSweepWorkload(1000, 3, dirty_fraction=0.4,
                                init_touch=False, max_phase_pages=250)
    p = profile_workload(w, rng())
    assert p.footprint_pages == 1000
    assert p.total_touches == 3000
    assert p.dirty_touches == 3 * 400
    assert p.dirty_ratio == pytest.approx(0.4)
    assert p.touches_per_page == pytest.approx(3.0)
    # a sweep re-touches every page one iteration later: chunking makes
    # 5 phases per iteration (the dirty boundary splits a chunk), so the
    # reuse distance is exactly 5 phases for every re-touch
    assert p.nphases == 15
    assert set(p.reuse_hist) == {5}
    assert p.reuse_hist[5] == 2000  # touches after the first sweep
    assert p.mean_reuse_distance == pytest.approx(5.0)


def test_first_touches_not_counted_as_reuse():
    w = SequentialSweepWorkload(100, 1, init_touch=False)
    p = profile_workload(w, rng())
    assert p.reuse_hist == {}
    assert p.mean_reuse_distance == float("inf")


def test_random_pattern_has_spread_reuse():
    w = RandomAccessWorkload(2048, 3, chunk_pages=64, init_touch=False,
                             max_phase_pages=512)
    p = profile_workload(w, rng())
    # shuffled chunk order spreads reuse distances over many values
    assert len(p.reuse_hist) > 3


def test_npb_profiles_are_consistent():
    profiles = [
        profile_workload(make_npb(b, "A", max_phase_pages=4096), rng())
        for b in ("LU", "CG", "IS")
    ]
    by_name = {p.name: p for p in profiles}
    # LU touches each page twice per iteration (two sweeps) + init
    lu = by_name["LU.A.1"]
    expected = lu.footprint_pages * (2 * 12 + 1)
    assert lu.total_touches == expected
    # CG is the read-mostly one
    assert by_name["CG.A.1"].dirty_ratio < by_name["IS.A.1"].dirty_ratio
    out = render_profiles(profiles)
    assert "LU.A.1" in out and "dirty ratio" in out


def test_cpu_accounting():
    w = SequentialSweepWorkload(100, 2, cpu_per_page_s=1e-3,
                                init_touch=False)
    p = profile_workload(w, rng())
    assert p.total_cpu_s == pytest.approx(0.2)
    assert p.cpu_per_touch_s == pytest.approx(1e-3)
