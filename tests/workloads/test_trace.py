"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.workloads import make_npb
from repro.workloads.base import expand_phase
from repro.workloads.synthetic import RandomAccessWorkload
from repro.workloads.trace import Trace, TraceWorkload


def phases_fingerprint(phases):
    out = []
    for p in phases:
        pages, dirty = expand_phase(p)
        out.append((tuple(pages.tolist()), tuple(dirty.tolist()),
                    round(p.cpu_s, 12), p.barrier, round(p.comm_s, 12)))
    return out


def test_record_materialises_all_phases():
    w = make_npb("LU", "A", max_phase_pages=2048)
    trace = Trace.record(w, np.random.default_rng(3))
    assert trace.nphases == sum(1 for _ in w.phases(np.random.default_rng(3)))
    assert trace.footprint_pages == w.footprint_pages
    assert trace.total_cpu_s > 0
    assert trace.total_pages_touched > 0


def test_replay_is_deterministic_regardless_of_rng():
    w = RandomAccessWorkload(1024, 2, init_touch=False)
    trace = Trace.record(w, np.random.default_rng(7))
    replay = TraceWorkload(trace)
    a = phases_fingerprint(replay.phases(np.random.default_rng(1)))
    b = phases_fingerprint(replay.phases(np.random.default_rng(999)))
    assert a == b
    assert a == phases_fingerprint(trace.phases)


def test_save_load_roundtrip(tmp_path):
    w = make_npb("CG", "A", nprocs=4, max_phase_pages=2048)
    trace = Trace.record(w, np.random.default_rng(11))
    path = tmp_path / "cg.npz"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.name == trace.name
    assert loaded.footprint_pages == trace.footprint_pages
    assert phases_fingerprint(loaded.phases) == phases_fingerprint(
        trace.phases
    )
    # barrier flags and labels survive
    assert [p.barrier for p in loaded.phases] == [
        p.barrier for p in trace.phases
    ]
    assert [p.label for p in loaded.phases] == [
        p.label for p in trace.phases
    ]


def test_trace_workload_runs_in_simulation():
    from repro.cluster import Node
    from repro.gang import BatchScheduler, Job
    from repro.sim import Environment, RngStreams

    base = RandomAccessWorkload(800, 2, cpu_per_page_s=1e-4,
                                max_phase_pages=256, init_touch=False)
    trace = Trace.record(base, np.random.default_rng(5))

    env = Environment()
    node = Node.build(env, "n0", 8.0, "lru")
    job = Job("replayed", [node], [TraceWorkload(trace)], RngStreams(0))
    BatchScheduler(env, [job]).start()
    env.run()
    assert job.finished
    assert job.processes[0].control.cpu_consumed_s == pytest.approx(
        trace.total_cpu_s, rel=1e-9
    )


def test_frozen_trace_removes_workload_variance():
    """Two policies on the same trace see byte-identical access streams."""
    from repro.cluster import Node
    from repro.gang import GangScheduler, Job
    from repro.sim import Environment, RngStreams

    base = RandomAccessWorkload(1100, 3, cpu_per_page_s=2e-3,
                                max_phase_pages=256, dirty_fraction=0.7,
                                init_touch=False)
    trace = Trace.record(base, np.random.default_rng(5))

    def run(policy):
        env = Environment()
        node = Node.build(env, "n0", 6.0, policy)
        jobs = [
            Job(f"j{i}", [node], [TraceWorkload(trace)], RngStreams(i))
            for i in range(2)
        ]
        GangScheduler(env, jobs, quantum_s=3.0).start()
        env.run()
        return max(j.completed_at for j in jobs)

    # with identical traces, any makespan difference is pure policy
    assert run("so/ao/ai/bg") <= run("lru")
