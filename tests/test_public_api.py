"""Public-API hygiene: exports resolve, and every public item has docs.

The documentation deliverable requires doc comments on every public
item; this test enforces it mechanically for everything named in each
package's ``__all__``.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro.sim",
    "repro.disk",
    "repro.mem",
    "repro.core",
    "repro.gang",
    "repro.cluster",
    "repro.workloads",
    "repro.metrics",
    "repro.validation",
    "repro.experiments",
]

MODULES = PACKAGES + [
    "repro.sim.engine", "repro.sim.resources", "repro.sim.rng",
    "repro.sim.monitor", "repro.sim.tracing",
    "repro.disk.device", "repro.disk.swap", "repro.disk.scheduler",
    "repro.mem.params", "repro.mem.frames", "repro.mem.page_table",
    "repro.mem.replacement", "repro.mem.readahead",
    "repro.mem.working_set", "repro.mem.vmm", "repro.mem.diagnostics",
    "repro.core.policies", "repro.core.recorder", "repro.core.selective",
    "repro.core.aggressive", "repro.core.background", "repro.core.api",
    "repro.gang.signals", "repro.gang.job", "repro.gang.scheduler",
    "repro.gang.matrix", "repro.gang.admission",
    "repro.cluster.network", "repro.cluster.mpi", "repro.cluster.node",
    "repro.cluster.topology",
    "repro.workloads.base", "repro.workloads.synthetic",
    "repro.workloads.npb", "repro.workloads.jobstream",
    "repro.workloads.trace", "repro.workloads.analysis",
    "repro.metrics.collector", "repro.metrics.analysis",
    "repro.metrics.report", "repro.metrics.timeline",
    "repro.metrics.fairness", "repro.metrics.gantt",
    "repro.validation.analytic",
    "repro.experiments.runner", "repro.experiments.multi_seed",
    "repro.experiments.report_io",
]


@pytest.mark.parametrize("modname", MODULES)
def test_module_importable_with_docstring(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and mod.__doc__.strip(), f"{modname} lacks a docstring"


@pytest.mark.parametrize("pkgname", PACKAGES)
def test_all_exports_resolve_and_are_documented(pkgname):
    pkg = importlib.import_module(pkgname)
    exported = getattr(pkg, "__all__", None)
    assert exported, f"{pkgname} has no __all__"
    for name in exported:
        obj = getattr(pkg, name, None)
        assert obj is not None, f"{pkgname}.{name} does not resolve"
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{pkgname}.{name} lacks a docstring"


@pytest.mark.parametrize("modname", MODULES)
def test_public_callables_have_docstrings(modname):
    mod = importlib.import_module(modname)
    exported = getattr(mod, "__all__", [])
    for name in exported:
        obj = getattr(mod, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        assert inspect.getdoc(obj), f"{modname}.{name} lacks a docstring"
        if inspect.isclass(obj):
            for mname, meth in inspect.getmembers(obj, inspect.isfunction):
                if mname.startswith("_"):
                    continue
                assert inspect.getdoc(meth), (
                    f"{modname}.{name}.{mname} lacks a docstring"
                )
