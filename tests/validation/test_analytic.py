"""Validate the simulator against the closed-form cost model."""

import numpy as np
import pytest

from repro.disk import Disk, DiskParams
from repro.mem import MemoryParams, VirtualMemoryManager
from repro.mem.readahead import plan_block_reads
from repro.sim import Environment
from repro.validation import (
    amortization_ratio,
    expected_block_pagein_s,
    expected_demand_pagein_s,
    expected_switch_paging_s,
    expected_transfer_s,
)

P = DiskParams()


def test_expected_transfer_validation():
    with pytest.raises(ValueError):
        expected_transfer_s(P, 0, 1)
    with pytest.raises(ValueError):
        expected_transfer_s(P, 4, 5)
    with pytest.raises(ValueError):
        expected_demand_pagein_s(P, 10, 0)
    with pytest.raises(ValueError):
        expected_block_pagein_s(P, 10, 0)


def test_single_transfer_matches_simulation_exactly():
    env = Environment()
    disk = Disk(env, P)
    # 3 runs of 4 pages each
    slots = np.concatenate([np.arange(0, 4), np.arange(10, 14),
                            np.arange(20, 24)])
    req = disk.submit(slots, "read")
    env.run()
    assert req.service_time == pytest.approx(
        expected_transfer_s(P, 12, 3)
    )


def test_continuation_discount_matches():
    env = Environment()
    disk = Disk(env, P)
    disk.submit(np.arange(0, 8), "read")
    second = disk.submit(np.arange(8, 16), "read")
    env.run()
    assert second.service_time == pytest.approx(
        expected_transfer_s(P, 8, 1, continues=True)
    )


def test_demand_pagein_model_matches_simulation():
    """A swapped-out contiguous region read back by demand faults."""
    env = Environment()
    disk = Disk(env, P)
    vmm = VirtualMemoryManager(
        env, MemoryParams(total_frames=4096, readahead_pages=16), disk
    )
    vmm.register_process(1, 4096)
    npages = 2048

    def setup():
        yield from vmm.touch(1, np.arange(npages), dirty=True)
        yield from vmm.reclaim(npages + vmm.params.freepages_high)

    p = env.process(setup())
    env.run(until=p)
    t0 = env.now

    def refault():
        yield from vmm.touch(1, np.arange(npages))

    p2 = env.process(refault())
    env.run(until=p2)
    measured = env.now - t0
    # the region was flushed in order, so its slots are contiguous and
    # the re-read streams (sequential=True)
    expected = expected_demand_pagein_s(P, npages, 16, sequential=True)
    # exact up to the per-page major-fault CPU charge
    cpu = npages * vmm.params.major_fault_cpu_s
    assert measured == pytest.approx(expected + cpu, rel=0.05)
    # the scattered-layout prediction must over-estimate this best case
    assert measured < expected_demand_pagein_s(P, npages, 16)


def test_block_pagein_model_matches_simulation():
    env = Environment()
    disk = Disk(env, P)
    vmm = VirtualMemoryManager(env, MemoryParams(total_frames=4096), disk)
    t = vmm.register_process(1, 4096)
    npages = 2048

    def setup():
        yield from vmm.touch(1, np.arange(npages), dirty=True)
        yield from vmm.reclaim(npages + vmm.params.freepages_high)

    p = env.process(setup())
    env.run(until=p)
    t0 = env.now

    def block_read():
        groups = plan_block_reads(t, np.arange(npages), max_batch=256)
        yield from vmm.swap_in_block(1, groups)

    p2 = env.process(block_read())
    env.run(until=p2)
    measured = env.now - t0
    expected = expected_block_pagein_s(P, npages, 256, sequential=True)
    assert measured == pytest.approx(expected, rel=0.05)


def test_block_beats_demand_by_model_and_measurement():
    npages = 4096
    demand = expected_demand_pagein_s(P, npages, 16)
    block = expected_block_pagein_s(P, npages, 256)
    assert block < demand
    # the advantage comes from positioning amortisation
    assert demand - block == pytest.approx(
        (npages / 16 - npages / 256) * (P.overhead_s + P.positioning_s),
        rel=1e-6,
    )


def test_switch_model_orders_policies():
    lru = expected_switch_paging_s(P, 48000, 29000, adaptive=False,
                                   interleave_penalty=1.3)
    full = expected_switch_paging_s(P, 48000, 29000, adaptive=True)
    assert full < lru
    # the modelled reduction lands in the band the experiments measure
    assert 0.5 < 1 - full / lru < 0.95


def test_amortization_ratio():
    r = amortization_ratio(P, batch=256)
    # one 4 KiB page behind a 12.5 ms positioning vs 256 pages behind one
    assert r > 10
    assert amortization_ratio(P, batch=1) == pytest.approx(1.0)
