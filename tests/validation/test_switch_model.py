"""Link the analytic switch model to a measured gang run."""

import pytest

from repro.disk.device import ERA_DISK
from repro.experiments import GangConfig, run_experiment
from repro.mem.params import mb_to_pages
from repro.validation import expected_switch_paging_s


def test_measured_switch_volume_within_model_band():
    """Pages moved in the minute after a steady-state adaptive switch
    sit near working-set size, and the measured makespan overhead is
    the same order as the analytic per-switch cost x switch count."""
    scale = 0.1
    cfg = GangConfig("LU", "B", nprocs=1, policy="so/ao/ai/bg",
                     seed=1, scale=scale)
    res = run_experiment(cfg)
    ws_pages = mb_to_pages(190 * scale)
    windows = res.collector.switch_paging_windows(
        window_s=0.2 * cfg.quantum_s * scale
    )
    # skip the first two switches (cold recorder); steady-state windows
    # move roughly a working set (reads) + dirty set (writes)
    steady = [pages for _, pages in windows[2:-1]]
    assert steady, "need steady-state switches"
    upper = 2.5 * ws_pages
    assert max(steady) <= upper
    assert max(steady) >= 0.2 * ws_pages

    # analytic per-switch time for the adaptive policy, same parameters
    model = expected_switch_paging_s(
        ERA_DISK, ws_in_pages=ws_pages,
        out_dirty_pages=int(0.6 * ws_pages), adaptive=True,
    )
    # the batch-relative overhead over all switches is the same order
    batch = run_experiment(
        GangConfig("LU", "B", nprocs=1, seed=1, scale=scale, mode="batch")
    ).makespan
    measured_overhead = res.makespan - batch
    switches = max(1, res.switch_count - 1)
    assert measured_overhead == pytest.approx(
        model * switches, rel=1.5
    )
