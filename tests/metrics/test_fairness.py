"""Tests for fairness metrics."""

import pytest

from repro.cluster import Node
from repro.gang import GangScheduler, Job
from repro.metrics.fairness import cpu_shares, jains_index, progress_ratios
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def test_jains_index_extremes():
    assert jains_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert jains_index({"a": 2.0, "b": 2.0}) == pytest.approx(1.0)
    assert jains_index([0.0, 0.0]) == 1.0  # trivially equal


def test_jains_index_validation():
    with pytest.raises(ValueError):
        jains_index([])
    with pytest.raises(ValueError):
        jains_index([-1.0, 1.0])


def run_gang(names_pages):
    env = Environment()
    node = Node.build(env, "n0", 8.0, "lru")
    rngs = RngStreams(9)
    jobs = []
    demands = {}
    for name, pages, iters in names_pages:
        w = SequentialSweepWorkload(pages, iters, cpu_per_page_s=2e-3,
                                    max_phase_pages=256, name=name,
                                    init_touch=False)
        jobs.append(Job(name, [node], [w], rngs.spawn(name)))
        demands[name] = pages * iters * 2e-3
    GangScheduler(env, jobs, quantum_s=1.0).start()
    env.run()
    return jobs, demands


def test_equal_jobs_get_equal_shares():
    jobs, demands = run_gang([("a", 512, 4), ("b", 512, 4)])
    shares = cpu_shares(jobs)
    assert jains_index(shares) > 0.99
    ratios = progress_ratios(jobs, demands)
    assert all(r == pytest.approx(1.0, rel=1e-6) for r in ratios.values())


def test_unequal_demands_still_complete():
    jobs, demands = run_gang([("small", 256, 2), ("big", 512, 6)])
    shares = cpu_shares(jobs)
    # the big job consumed more CPU overall...
    assert shares["big"] > shares["small"]
    # ...but both finished their full demand
    ratios = progress_ratios(jobs, demands)
    assert all(r == pytest.approx(1.0, rel=1e-6) for r in ratios.values())


def test_progress_ratio_validation():
    jobs, demands = run_gang([("a", 128, 1)])
    with pytest.raises(ValueError):
        progress_ratios(jobs, {})


def test_cpu_shares_empty_total():
    env = Environment()
    node = Node.build(env, "n0", 4.0, "lru")
    rngs = RngStreams(1)
    w = SequentialSweepWorkload(64, 1, name="idle")
    job = Job("idle", [node], [w], rngs)
    shares = cpu_shares([job])  # never ran
    assert shares == {"idle": 0.0}
