"""Unit tests for the collector and text reporting."""

import numpy as np
import pytest

from repro.cluster import Node
from repro.gang.scheduler import SwitchRecord
from repro.metrics import MetricsCollector, ascii_series, format_table
from repro.metrics.report import percent
from repro.sim import Environment


def run_paging(collector):
    env = Environment()
    node = Node.build(env, "node0", 1.0, "lru")  # 256 frames
    collector.attach_node(node)
    vmm = node.vmm
    vmm.register_process(1, 512)

    def proc():
        yield from vmm.touch(1, np.arange(200), dirty=True)
        yield from vmm.touch(1, np.arange(200, 400), dirty=True)
        yield from vmm.touch(1, np.arange(100))

    p = env.process(proc())
    env.run(until=p)
    return env


def test_collector_records_paging_events():
    c = MetricsCollector()
    env = run_paging(c)
    assert c.paging
    assert all(e.node == "node0" for e in c.paging)
    reads = c.pages_moved(op="read")
    writes = c.pages_moved(op="write")
    assert reads > 0 and writes > 0
    assert c.pages_moved() == reads + writes
    assert c.pages_moved(node="other") == 0
    assert c.io_busy_seconds() > 0
    assert c.io_busy_seconds() <= env.now


def test_paging_series_bins_all_pages():
    c = MetricsCollector()
    run_paging(c)
    series = c.paging_series(bin_s=0.1)
    assert series["read"].sum() == c.pages_moved(op="read")
    assert series["write"].sum() == c.pages_moved(op="write")
    assert series["t"].size == series["read"].size


def test_paging_series_invalid_bin():
    c = MetricsCollector()
    with pytest.raises(ValueError):
        c.paging_series(bin_s=0)


def test_switch_windows():
    c = MetricsCollector()
    run_paging(c)
    c.on_switch(SwitchRecord(0.0, 0.1, "j1", None))
    windows = c.switch_paging_windows(window_s=1e9)
    assert windows[0][1] == c.pages_moved()


def test_clear():
    c = MetricsCollector()
    run_paging(c)
    c.clear()
    assert not c.paging and not c.switches


def test_format_table_basic():
    out = format_table(("a", "bb"), [(1, 2.5), ("x", 10000.0)], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert "10,000" in out


def test_format_table_width_mismatch():
    with pytest.raises(ValueError):
        format_table(("a",), [(1, 2)])


def test_ascii_series_shapes():
    out = ascii_series([0, 1, 2, 4], width=4, label="x")
    assert out.startswith("x")
    assert out.count("|") == 2
    # max value maps to the full block
    assert "█" in out


def test_ascii_series_empty_and_zero():
    assert "|" in ascii_series([], width=5)
    flat = ascii_series([0, 0, 0], width=3)
    assert "█" not in flat


def test_ascii_series_invalid_width():
    with pytest.raises(ValueError):
        ascii_series([1], width=0)


def test_percent():
    assert percent(0.5) == "50%"
    assert percent(0.934) == "93%"
