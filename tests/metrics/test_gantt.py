"""Tests for the Gantt renderer and coordination metrics."""

import pytest

from repro.cluster import Node
from repro.gang import GangScheduler, Job
from repro.metrics.gantt import (
    coordination_score,
    render_gantt,
    scheduled_intervals,
)
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def run_cluster(nnodes=2, njobs=2, policy="lru", quantum=3.0):
    env = Environment()
    nodes = [Node.build(env, f"n{i}", 8.0, policy) for i in range(nnodes)]
    rngs = RngStreams(4)
    jobs = []
    for j in range(njobs):
        wls = [
            SequentialSweepWorkload(512, 3, cpu_per_page_s=2e-3,
                                    max_phase_pages=256, name=f"j{j}",
                                    barrier_per_iteration=nnodes > 1)
            for _ in nodes
        ]
        jobs.append(Job(f"j{j}", nodes, wls, rngs.spawn(f"j{j}")))
    GangScheduler(env, jobs, quantum_s=quantum).start()
    env.run()
    return nodes, jobs


def test_scheduled_intervals_alternate():
    nodes, jobs = run_cluster(nnodes=1)
    a = scheduled_intervals(jobs[0], nodes[0])
    b = scheduled_intervals(jobs[1], nodes[0])
    assert a and b
    # intervals of the two jobs never overlap on the shared node
    for s0, e0 in a:
        for s1, e1 in b:
            assert min(e0, e1) <= max(s0, s1) + 1e-9
    # total scheduled time covers each job's completion reasonably
    assert sum(e - s for s, e in a) > 0


def test_render_gantt_structure():
    nodes, jobs = run_cluster(nnodes=2)
    out = render_gantt(jobs, nodes, width=48)
    lines = out.splitlines()
    assert lines[0].startswith("gantt")
    assert lines[1].startswith("n0")
    assert lines[2].startswith("n1")
    assert "legend" in lines[-1]
    body = lines[1].split("|")[1]
    assert len(body) == 48
    assert "A" in body and "B" in body  # both jobs visible


def test_render_gantt_validation():
    nodes, jobs = run_cluster(nnodes=1)
    with pytest.raises(ValueError):
        render_gantt(jobs, nodes, width=0)
    with pytest.raises(ValueError):
        render_gantt([], nodes)


def test_gang_coordination_is_high():
    """All ranks of a gang-scheduled job switch together."""
    nodes, jobs = run_cluster(nnodes=2)
    assert coordination_score(jobs) > 0.95


def test_coordination_score_single_node_trivially_one():
    nodes, jobs = run_cluster(nnodes=1)
    assert coordination_score(jobs) == 1.0
