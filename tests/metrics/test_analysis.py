"""Unit tests for overhead/reduction metric definitions."""

import pytest

from repro.metrics import (
    overhead_fraction,
    overhead_seconds,
    paging_reduction,
)


def test_overhead_seconds():
    assert overhead_seconds(150.0, 100.0) == 50.0
    assert overhead_seconds(90.0, 100.0) == 0.0  # clamped


def test_overhead_fraction():
    assert overhead_fraction(200.0, 100.0) == pytest.approx(0.5)
    assert overhead_fraction(100.0, 100.0) == 0.0


def test_overhead_fraction_invalid():
    with pytest.raises(ValueError):
        overhead_fraction(0.0, 100.0)


def test_reduction_full():
    # lru overhead 100s, policy overhead 0 -> 100% reduction
    assert paging_reduction(200.0, 100.0, 100.0) == pytest.approx(1.0)


def test_reduction_partial():
    # lru overhead 100s, policy overhead 30s -> 70%
    assert paging_reduction(200.0, 130.0, 100.0) == pytest.approx(0.7)


def test_reduction_none():
    assert paging_reduction(200.0, 200.0, 100.0) == pytest.approx(0.0)


def test_reduction_negative_when_worse():
    assert paging_reduction(200.0, 250.0, 100.0) == pytest.approx(-0.5)


def test_reduction_zero_baseline_defined_as_zero():
    """The CG-on-4-nodes case: no overhead to begin with."""
    assert paging_reduction(100.0, 120.0, 100.0) == 0.0
