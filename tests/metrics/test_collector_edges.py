"""Edge cases for MetricsCollector analysis and lifecycle."""

import numpy as np
import pytest

from repro.metrics.collector import MetricsCollector, PagingEvent


def _ev(node="n0", op="read", pages=10, start=0.0, end=1.0, pid=1):
    return PagingEvent(node, op, pages, start, end, pid)


# -- paging_series ---------------------------------------------------------

def test_paging_series_empty_events():
    c = MetricsCollector()
    s = c.paging_series(bin_s=10.0)
    assert len(s["t"]) == 1
    assert s["t"][0] == 0.0
    assert s["read"].sum() == 0 and s["write"].sum() == 0


def test_paging_series_empty_with_t_end():
    c = MetricsCollector()
    s = c.paging_series(bin_s=10.0, t_end=35.0)
    assert len(s["t"]) == 4  # ceil(35/10)
    assert s["read"].sum() == 0


def test_paging_series_short_t_end_clamps_to_last_bin():
    c = MetricsCollector()
    c.paging.append(_ev(end=99.0, pages=7))
    s = c.paging_series(bin_s=10.0, t_end=30.0)
    # event completes past the horizon: lands in the final bin, not lost
    assert len(s["t"]) == 3
    assert s["read"][-1] == 7


def test_paging_series_bin_boundary_event():
    c = MetricsCollector()
    # an event completing exactly at a bin edge belongs to that bin
    # (floor(10.0/10) == bin 1), and one at the horizon edge clamps
    c.paging.append(_ev(end=10.0, pages=3))
    c.paging.append(_ev(end=20.0, pages=5, op="write"))
    s = c.paging_series(bin_s=10.0, t_end=20.0)
    assert len(s["t"]) == 2
    assert s["read"][1] == 3
    assert s["write"][1] == 5


def test_paging_series_zero_time_event():
    c = MetricsCollector()
    c.paging.append(_ev(start=0.0, end=0.0, pages=4))
    s = c.paging_series(bin_s=5.0)
    assert len(s["t"]) == 1
    assert s["read"][0] == 4


def test_paging_series_node_filter_and_validation():
    c = MetricsCollector()
    c.paging.append(_ev(node="n0", pages=2, end=1.0))
    c.paging.append(_ev(node="n1", pages=9, end=1.0))
    s = c.paging_series(bin_s=1.0, node="n0")
    assert s["read"].sum() == 2
    with pytest.raises(ValueError):
        c.paging_series(bin_s=0.0)
    with pytest.raises(ValueError):
        c.paging_series(bin_s=-1.0)


# -- switch_paging_windows -------------------------------------------------

class _Rec:
    def __init__(self, started_at):
        self.started_at = started_at


def test_switch_paging_windows_no_switches():
    c = MetricsCollector()
    c.paging.append(_ev())
    assert c.switch_paging_windows(10.0) == []


def test_switch_paging_windows_boundaries_half_open():
    c = MetricsCollector()
    c.switches.append(_Rec(100.0))
    c.paging.append(_ev(end=100.0, pages=1))   # at window start: in
    c.paging.append(_ev(end=109.999, pages=2))  # inside
    c.paging.append(_ev(end=110.0, pages=4))   # at window end: out
    (t0, pages), = c.switch_paging_windows(10.0)
    assert t0 == 100.0
    assert pages == 3


def test_switch_paging_windows_overlapping_switches_double_count():
    c = MetricsCollector()
    c.switches.append(_Rec(0.0))
    c.switches.append(_Rec(5.0))
    c.paging.append(_ev(end=6.0, pages=10))
    wins = c.switch_paging_windows(10.0)
    assert [p for _, p in wins] == [10, 10]


# -- lifecycle -------------------------------------------------------------

class _Node:
    class _Disk:
        retry_count = 3
        failed_requests = 1
        latency_spikes = 2
        on_complete = None

    class _Adaptive:
        ai_fallbacks = 4
        recorder = None
        bgwriter = None

    def __init__(self, name="n0"):
        self.name = name
        self.disk = self._Disk()
        self.adaptive = self._Adaptive()


def test_clear_detaches_stale_handles():
    c = MetricsCollector()
    c.attach_node(_Node())
    c.attach_scheduler(object())
    c.paging.append(_ev())
    fs = c.fault_summary()
    assert fs["disk_retries"] == 3
    c.clear()
    assert c.paging == [] and c.switches == []
    assert c.nodes == [] and c.scheduler is None and c.faults is None
    # a cleared collector no longer double-counts the old node
    assert c.fault_summary()["disk_retries"] == 0


def test_reused_collector_counts_only_new_nodes():
    c = MetricsCollector()
    c.attach_node(_Node("a"))
    c.clear()
    c.attach_node(_Node("b"))
    fs = c.fault_summary()
    assert fs["disk_retries"] == 3  # one node, not two


def test_detach_all_keeps_recorded_events():
    c = MetricsCollector()
    c.attach_node(_Node())
    c.paging.append(_ev(pages=6))
    c.detach_all()
    assert c.nodes == []
    assert c.pages_moved() == 6
