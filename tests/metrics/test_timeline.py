"""Tests for the per-job breakdown / node utilisation analysis."""

import pytest

from repro.cluster import Node
from repro.gang import GangScheduler, Job
from repro.metrics import (
    MetricsCollector,
    job_breakdown,
    node_utilization,
    render_breakdown,
)
from repro.sim import Environment, RngStreams
from repro.workloads import SequentialSweepWorkload


def run_two_jobs(policy="lru"):
    env = Environment()
    collector = MetricsCollector()
    node = Node.build(env, "node0", 6.0, policy)
    collector.attach_node(node)
    rngs = RngStreams(2)
    jobs = []
    for name in ("a", "b"):
        w = SequentialSweepWorkload(1100, 3, cpu_per_page_s=2e-3,
                                    max_phase_pages=256, name=name,
                                    dirty_fraction=0.7)
        jobs.append(Job(name, [node], [w], rngs.spawn(name)))
    GangScheduler(env, jobs, quantum_s=3.0).start()
    env.run()
    return jobs, collector


def test_breakdown_components_sum_to_completion():
    jobs, _ = run_two_jobs()
    for d in job_breakdown(jobs):
        assert d.completion_s == pytest.approx(
            d.cpu_s + d.stopped_s + d.other_s, rel=1e-9
        )
        assert d.cpu_s > 0
        assert d.stopped_s > 0      # gang scheduling stopped each job
        assert d.other_s >= 0       # paging waits
        assert 0 < d.cpu_fraction < 1


def test_breakdown_requires_finished_jobs():
    env = Environment()
    node = Node.build(env, "n", 4.0, "lru")
    rngs = RngStreams(3)
    w = SequentialSweepWorkload(128, 1, name="x")
    job = Job("x", [node], [w], rngs)
    with pytest.raises(ValueError, match="not finished"):
        job_breakdown([job])


def test_node_utilization_aggregates_collector():
    jobs, collector = run_two_jobs()
    utils = node_utilization(collector)
    assert len(utils) == 1
    u = utils[0]
    assert u.node == "node0"
    assert u.pages_read == collector.pages_moved(op="read")
    assert u.pages_written == collector.pages_moved(op="write")
    assert u.disk_busy_s == pytest.approx(collector.io_busy_seconds())
    mk = max(j.completed_at for j in jobs)
    assert 0 < u.busy_fraction(mk) < 1


def test_render_breakdown_produces_tables_and_bars():
    jobs, collector = run_two_jobs()
    out = render_breakdown(jobs, collector)
    assert "Per-job time breakdown" in out
    assert "Per-node paging utilisation" in out
    assert "█" in out  # cpu bar segments present


def test_adaptive_reduces_other_time():
    """Paging+sync time shrinks under the adaptive stack."""
    lru_jobs, _ = run_two_jobs("lru")
    ad_jobs, _ = run_two_jobs("so/ao/ai/bg")
    lru_other = sum(d.other_s for d in job_breakdown(lru_jobs))
    ad_other = sum(d.other_s for d in job_breakdown(ad_jobs))
    assert ad_other < lru_other
