"""Unit tests for the disk device service model and dispatcher."""

import numpy as np
import pytest

from repro.disk import (
    PRIO_BACKGROUND,
    PRIO_FOREGROUND,
    Disk,
    DiskParams,
    DiskRequest,
)
from repro.sim import Environment, fastpath

P = DiskParams()  # defaults: seek 8 ms, rot 4 ms, 20 MB/s, 4 KiB pages


def make_disk(env=None, **kw):
    env = env or Environment()
    return env, Disk(env, DiskParams(**kw) if kw else P)


def run_one(disk, env, slots, op="read", priority=PRIO_FOREGROUND):
    req = disk.submit(np.asarray(slots), op, priority)
    env.run(until=req)
    return req


def test_params_validation():
    with pytest.raises(ValueError):
        DiskParams(seek_s=-1)
    with pytest.raises(ValueError):
        DiskParams(transfer_bytes_s=0)


def test_page_transfer_time():
    assert P.page_transfer_s == pytest.approx(4096 / 20e6)


def test_single_page_read_cost():
    env, disk = make_disk()
    req = run_one(disk, env, [100])
    expected = P.overhead_s + P.positioning_s + P.page_transfer_s
    assert req.service_time == pytest.approx(expected)
    assert req.seeks == 1


def test_contiguous_run_costs_one_seek():
    env, disk = make_disk()
    req = run_one(disk, env, np.arange(100, 164))
    expected = P.overhead_s + P.positioning_s + 64 * P.page_transfer_s
    assert req.service_time == pytest.approx(expected)
    assert req.seeks == 1


def test_scattered_slots_cost_many_seeks():
    env, disk = make_disk()
    slots = np.array([10, 20, 30, 40])
    req = run_one(disk, env, slots)
    assert req.seeks == 4
    expected = P.overhead_s + 4 * P.positioning_s + 4 * P.page_transfer_s
    assert req.service_time == pytest.approx(expected)


def test_sequential_streaming_skips_seek():
    """A request continuing exactly where the last one ended is seekless."""
    env, disk = make_disk()
    run_one(disk, env, np.arange(0, 16))
    req2 = run_one(disk, env, np.arange(16, 32))
    assert req2.seeks == 0
    assert req2.service_time == pytest.approx(
        P.overhead_s + 16 * P.page_transfer_s
    )


def test_direction_change_forces_seek():
    """read -> write at the adjacent slot still seeks (different areas)."""
    env, disk = make_disk()
    run_one(disk, env, np.arange(0, 16), op="read")
    req2 = run_one(disk, env, np.arange(16, 32), op="write")
    assert req2.seeks == 1


def test_non_adjacent_followup_seeks():
    env, disk = make_disk()
    run_one(disk, env, np.arange(0, 16))
    req2 = run_one(disk, env, np.arange(100, 116))
    assert req2.seeks == 1


def test_interleaved_read_write_pay_double():
    """Alternating read/write bursts cost more than separated bursts —
    the effect aggressive page-out exploits (paper §3.2)."""
    def total_time(ops):
        env = Environment()
        disk = Disk(env, P)
        reqs = []
        for op, slots in ops:
            reqs.append(disk.submit(slots, op))
        env.run()
        return env.now

    reads = [("read", np.arange(i * 16, i * 16 + 16)) for i in range(8)]
    writes = [("write", np.arange(1000 + i * 16, 1000 + i * 16 + 16)) for i in range(8)]
    interleaved = [x for pair in zip(reads, writes) for x in pair]
    separated = writes + reads
    assert total_time(interleaved) > total_time(separated)


def test_fifo_service_within_priority():
    env, disk = make_disk()
    order = []
    reqs = [disk.submit(np.array([i * 50]), "read") for i in range(3)]
    for i, r in enumerate(reqs):
        r.callbacks.append(lambda ev, i=i: order.append(i))
    env.run()
    assert order == [0, 1, 2]


def test_background_request_yields_to_foreground():
    env, disk = make_disk()
    order = []
    # first request occupies the disk; then queue a background and a
    # foreground request — the foreground one must be served first.
    first = disk.submit(np.arange(0, 64), "read", PRIO_FOREGROUND)
    bg = disk.submit(np.array([500]), "write", PRIO_BACKGROUND)
    fg = disk.submit(np.array([600]), "read", PRIO_FOREGROUND)
    bg.callbacks.append(lambda ev: order.append("bg"))
    fg.callbacks.append(lambda ev: order.append("fg"))
    env.run()
    assert order == ["fg", "bg"]


def test_cancel_pending_request():
    env, disk = make_disk()
    first = disk.submit(np.arange(0, 64), "read")
    doomed = disk.submit(np.array([100]), "read")
    assert doomed.cancel()
    env.run()
    assert not doomed.triggered
    assert disk.total_requests == 1


def test_cancel_after_service_returns_false():
    env, disk = make_disk()
    req = run_one(disk, env, [5])
    assert not req.cancel()


def test_statistics_accumulate():
    env, disk = make_disk()
    run_one(disk, env, np.arange(0, 10), op="read")
    run_one(disk, env, np.arange(50, 55), op="write")
    assert disk.total_requests == 2
    assert disk.total_pages == {"read": 10, "write": 5}
    assert disk.total_busy_s == pytest.approx(env.now)


def test_on_complete_callback_fires():
    env = Environment()
    events = []
    disk = Disk(env, P, on_complete=lambda req, s, e: events.append((req.op, req.npages, s, e)))
    run_one(disk, env, np.arange(0, 4), op="write")
    assert len(events) == 1
    op, npages, start, end = events[0]
    assert (op, npages, start) == ("write", 4, 0.0)
    assert end == pytest.approx(env.now)


def test_empty_request_rejected():
    env, disk = make_disk()
    with pytest.raises(ValueError):
        disk.submit(np.array([], dtype=np.int64), "read")


def test_bad_op_rejected():
    env, disk = make_disk()
    with pytest.raises(ValueError):
        disk.submit(np.array([1]), "erase")


def test_slots_are_sorted_for_service():
    env, disk = make_disk()
    req = run_one(disk, env, np.array([30, 10, 20, 11, 21, 31]))
    # sorted -> [10,11,20,21,30,31] = 3 runs
    assert req.seeks == 3


def test_block_transfer_beats_scattered_per_page():
    """Core premise: per-page cost of one big contiguous transfer is far
    below per-page cost of scattered single-page I/Os."""
    env, disk = make_disk()
    block = run_one(disk, env, np.arange(0, 256))
    env2, disk2 = make_disk()
    total = 0.0
    for i in range(0, 256 * 7, 7):  # scattered singles
        r = run_one(disk2, env2, [i])
        total += r.service_time
    assert block.service_time < total / 10


def test_queue_length_tracks():
    env, disk = make_disk()
    disk.submit(np.arange(0, 64), "read")
    disk.submit(np.array([1000]), "read")
    disk.submit(np.array([2000]), "read")
    # the fast dispatcher pops the first request synchronously at submit;
    # the legacy coroutine server only starts at the next engine step
    assert disk.queue_length == (2 if fastpath.ENABLED else 3)
    assert disk.busy
    env.run()
    assert disk.queue_length == 0
    assert not disk.busy
