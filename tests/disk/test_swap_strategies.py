"""Tests for swap allocation strategies (best-fit / next-fit)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import SwapAllocator, SwapFullError


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown strategy"):
        SwapAllocator(16, strategy="worst-fit")


def carve(s):
    """Carve the 100-slot space into holes of 10 [0,10), 30 [40,70)."""
    a = s.allocate(100)
    s.free(np.arange(0, 10))
    s.free(np.arange(40, 70))
    return a


def test_first_fit_takes_lowest_hole():
    s = SwapAllocator(100, strategy="first-fit")
    carve(s)
    got = s.allocate(8)
    assert got[0] == 0


def test_best_fit_takes_tightest_hole():
    s = SwapAllocator(100, strategy="best-fit")
    carve(s)
    got = s.allocate(8)
    assert got[0] == 0      # the 10-hole is the tightest fit for 8
    got2 = s.allocate(8)
    assert got2[0] == 40    # only the 30-hole remains


def test_best_fit_prefers_exact_over_large():
    s = SwapAllocator(100, strategy="best-fit")
    carve(s)
    got = s.allocate(25)
    assert got[0] == 40     # 30-hole, the only one that fits


def test_next_fit_advances_through_space():
    s = SwapAllocator(100, strategy="next-fit")
    a = s.allocate(10)      # [0,10), hint -> 10
    b = s.allocate(10)      # [10,20), hint -> 20
    s.free(a)               # hole at 0
    c = s.allocate(10)      # next-fit starts at hint 20, not the hole
    assert c[0] == 20
    assert b[0] == 10


def test_next_fit_wraps_around():
    s = SwapAllocator(30, strategy="next-fit")
    a = s.allocate(10)
    b = s.allocate(10)
    c = s.allocate(10)      # hint -> 30 (end)
    s.free(a)
    d = s.allocate(10)      # wraps to the hole at 0
    assert d[0] == 0


def test_all_strategies_satisfy_fragmented_requests():
    for strategy in SwapAllocator.STRATEGIES:
        s = SwapAllocator(100, strategy=strategy)
        carve(s)
        got = s.allocate(35)  # no single hole: must span runs
        assert got.size == 35
        assert s.free_slots == 5


@given(st.sampled_from(SwapAllocator.STRATEGIES),
       st.lists(st.integers(1, 24), min_size=1, max_size=30),
       st.randoms(use_true_random=False))
@settings(max_examples=45, deadline=None)
def test_property_strategies_share_invariants(strategy, sizes, rnd):
    """Conservation and no-overlap hold for every strategy."""
    s = SwapAllocator(256, strategy=strategy)
    live = []
    for size in sizes:
        if live and rnd.random() < 0.4:
            s.free(live.pop(rnd.randrange(len(live))))
        else:
            try:
                live.append(s.allocate(size))
            except SwapFullError:
                continue
        held = sum(a.size for a in live)
        assert s.used_slots == held
        if live:
            merged = np.concatenate(live)
            assert len(np.unique(merged)) == merged.size
    for a in live:
        s.free(a)
    assert s.free_runs() == [(0, 256)]
