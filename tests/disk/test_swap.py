"""Unit + property tests for the swap-slot allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import SwapAllocator, SwapFullError


def test_initial_state_all_free():
    s = SwapAllocator(100)
    assert s.free_slots == 100
    assert s.used_slots == 0
    assert s.free_runs() == [(0, 100)]
    assert s.largest_free_run() == 100


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        SwapAllocator(0)
    with pytest.raises(ValueError):
        SwapAllocator(-5)


def test_allocate_contiguous_when_possible():
    s = SwapAllocator(100)
    slots = s.allocate(10)
    assert np.array_equal(slots, np.arange(10))
    assert s.free_slots == 90


def test_allocate_zero_rejected():
    s = SwapAllocator(10)
    with pytest.raises(ValueError):
        s.allocate(0)


def test_allocate_beyond_capacity_raises():
    s = SwapAllocator(10)
    s.allocate(8)
    with pytest.raises(SwapFullError):
        s.allocate(3)


def test_first_fit_skips_small_holes():
    s = SwapAllocator(100)
    a = s.allocate(10)   # [0,10)
    b = s.allocate(10)   # [10,20)
    s.free(a)            # hole of 10 at start
    big = s.allocate(20) # must come from [20,40), not the small hole
    assert big[0] == 20
    assert np.all(np.diff(big) == 1)
    small = s.allocate(5)  # fits the hole
    assert small[0] == 0


def test_fragmented_allocation_spans_runs():
    s = SwapAllocator(30)
    a = s.allocate(10)      # [0,10)
    b = s.allocate(10)      # [10,20)
    c = s.allocate(10)      # [20,30)
    s.free(a)
    s.free(c)
    # 20 free but in two runs of 10: allocation must still succeed
    slots = s.allocate(15)
    assert slots.size == 15
    assert s.free_slots == 5


def test_free_coalesces_adjacent_runs():
    s = SwapAllocator(30)
    a = s.allocate(10)
    b = s.allocate(10)
    c = s.allocate(10)
    s.free(a)
    s.free(c)
    assert len(s.free_runs()) == 2
    s.free(b)  # should merge everything into one run
    assert s.free_runs() == [(0, 30)]


def test_double_free_detected():
    s = SwapAllocator(10)
    a = s.allocate(5)
    s.free(a)
    with pytest.raises(ValueError):
        s.free(a)


def test_free_out_of_range_rejected():
    s = SwapAllocator(10)
    with pytest.raises(ValueError):
        s.free([100])


def test_free_duplicate_slots_rejected():
    s = SwapAllocator(10)
    s.allocate(5)
    with pytest.raises(ValueError):
        s.free([1, 1])


def test_free_empty_is_noop():
    s = SwapAllocator(10)
    s.free([])
    assert s.free_slots == 10


def test_allocate_single():
    s = SwapAllocator(10)
    assert s.allocate_single() == 0
    assert s.allocate_single() == 1


def test_fragmentation_metric():
    s = SwapAllocator(40)
    a = s.allocate(10)
    b = s.allocate(10)
    s.free(a)
    # free: run of 10 at 0 and run of 20 at 20 -> largest 20 of 30 free
    assert s.fragmentation() == pytest.approx(1.0 - 20 / 30)
    s.free(b)
    assert s.fragmentation() == 0.0


def test_reuse_after_free_prefers_low_addresses():
    s = SwapAllocator(20)
    a = s.allocate(20)
    s.free(a)
    b = s.allocate(5)
    assert b[0] == 0


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocate/free operations."""
    n_ops = draw(st.integers(1, 40))
    return [draw(st.integers(1, 16)) for _ in range(n_ops)]


@given(alloc_free_script(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_conservation_and_no_overlap(sizes, rnd):
    """Free + used always equals capacity; live slots never overlap."""
    s = SwapAllocator(256)
    live: list[np.ndarray] = []
    for size in sizes:
        if live and rnd.random() < 0.4:
            idx = rnd.randrange(len(live))
            s.free(live.pop(idx))
        else:
            try:
                slots = s.allocate(size)
            except SwapFullError:
                assert s.free_slots < size
                continue
            live.append(slots)
        # invariant 1: conservation
        held = sum(a.size for a in live)
        assert s.used_slots == held
        assert s.free_slots == 256 - held
        # invariant 2: no slot handed out twice
        if live:
            allslots = np.concatenate(live)
            assert len(np.unique(allslots)) == allslots.size
        # invariant 3: free runs are disjoint, sorted and within range
        runs = s.free_runs()
        prev_end = -1
        for start, length in runs:
            assert length > 0
            assert start > prev_end  # disjoint and non-adjacent (coalesced)
            prev_end = start + length - 1
            assert 0 <= start and prev_end < 256


@given(st.lists(st.integers(1, 32), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_free_everything_restores_single_run(sizes):
    """After freeing every allocation the space is one coalesced run."""
    s = SwapAllocator(1024)
    allocs = []
    for size in sizes:
        try:
            allocs.append(s.allocate(size))
        except SwapFullError:
            break
    for a in allocs:
        s.free(a)
    assert s.free_runs() == [(0, 1024)]
    assert s.fragmentation() == 0.0
