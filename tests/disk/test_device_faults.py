"""Disk fault injection: retries, backoff, budgets, latency spikes."""

import numpy as np
import pytest

from repro.disk import PRIO_FOREGROUND, Disk, DiskParams
from repro.faults import DiskFailure, FaultPlan, FaultRates
from repro.sim import Environment

P = DiskParams()


class ScriptedFaults:
    """Duck-typed plan that errors/spikes a fixed number of times."""

    def __init__(self, errors=0, spikes=0, spike_factor=5.0):
        self.errors = errors
        self.spikes = spikes
        self.spike_factor = spike_factor

    def disk_error(self, device):
        if self.errors > 0:
            self.errors -= 1
            return True
        return False

    def disk_latency_factor(self, device):
        if self.spikes > 0:
            self.spikes -= 1
            return self.spike_factor
        return 1.0


def submit_one(disk, env, npages=1):
    req = disk.submit(np.arange(100, 100 + npages), "read", PRIO_FOREGROUND)
    env.run(until=req)
    return req


def test_retry_params_validated():
    env = Environment()
    with pytest.raises(ValueError):
        Disk(env, P, max_retries=-1)
    with pytest.raises(ValueError):
        Disk(env, P, retry_budget=-1)


def test_attached_zero_rate_plan_changes_nothing():
    env_a = Environment()
    plain = Disk(env_a, P)
    req_a = submit_one(plain, env_a)
    env_b = Environment()
    faulty = Disk(env_b, P, faults=FaultPlan(FaultRates(), 0))
    req_b = submit_one(faulty, env_b)
    assert req_a.service_time == req_b.service_time
    assert env_a.now == env_b.now
    assert faulty.retry_count == 0 and faulty.error_count == 0


def test_transient_error_is_retried_with_backoff():
    env = Environment()
    disk = Disk(env, P, faults=ScriptedFaults(errors=1))
    req = submit_one(disk, env)
    assert req.ok
    assert disk.error_count == 1
    assert disk.retry_count == 1
    assert disk.failed_requests == 0
    # two service attempts plus one backoff sleep of positioning * 2^1
    per_attempt = P.overhead_s + P.positioning_s + P.page_transfer_s
    assert env.now == pytest.approx(2 * per_attempt + P.positioning_s * 2)


def test_backoff_grows_exponentially():
    env = Environment()
    disk = Disk(env, P, faults=ScriptedFaults(errors=3))
    req = submit_one(disk, env)
    assert req.ok
    assert disk.retry_count == 3
    per_attempt = P.overhead_s + P.positioning_s + P.page_transfer_s
    backoffs = P.positioning_s * (2 + 4 + 8)
    assert env.now == pytest.approx(4 * per_attempt + backoffs)


def test_persistent_errors_exhaust_retries_into_typed_failure():
    env = Environment()
    disk = Disk(env, P, faults=FaultPlan(FaultRates(disk_error_rate=1.0)),
                max_retries=3)
    req = disk.submit(np.array([5]), "read", PRIO_FOREGROUND)
    with pytest.raises(DiskFailure, match="3 retries"):
        env.run(until=req)
    assert disk.failed_requests == 1
    assert disk.error_count == 4  # initial attempt + 3 retries
    assert disk.retry_count == 3


def test_retry_budget_bounds_total_retries_per_device():
    env = Environment()
    disk = Disk(env, P, faults=FaultPlan(FaultRates(disk_error_rate=1.0)),
                max_retries=10, retry_budget=2)
    req = disk.submit(np.array([5]), "read", PRIO_FOREGROUND)
    with pytest.raises(DiskFailure, match="budget exhausted"):
        env.run(until=req)
    assert disk.retry_count == 2
    assert disk.retry_budget_left == 0


def test_budget_is_shared_across_requests():
    env = Environment()
    # first request eats one retry from the budget, second exhausts it
    disk = Disk(env, P, faults=ScriptedFaults(errors=1), retry_budget=1)
    req = submit_one(disk, env)
    assert req.ok and disk.retry_budget_left == 0
    disk.faults = FaultPlan(FaultRates(disk_error_rate=1.0))
    req2 = disk.submit(np.array([9]), "read", PRIO_FOREGROUND)
    with pytest.raises(DiskFailure, match="budget exhausted"):
        env.run(until=req2)


def test_latency_spike_multiplies_service_time():
    env = Environment()
    disk = Disk(env, P, faults=ScriptedFaults(spikes=1, spike_factor=5.0))
    req = submit_one(disk, env)
    per_attempt = P.overhead_s + P.positioning_s + P.page_transfer_s
    assert req.ok
    assert req.service_time == pytest.approx(5.0 * per_attempt)
    assert disk.latency_spikes == 1
    assert disk.error_count == 0


def test_failed_request_does_not_wedge_the_queue():
    env = Environment()
    # one error is enough with max_retries=0: the first attempt fails hard
    disk = Disk(env, P, faults=ScriptedFaults(errors=1), max_retries=0)
    doomed = disk.submit(np.array([1]), "read", PRIO_FOREGROUND)
    doomed.defuse()
    healthy = disk.submit(np.array([2]), "read", PRIO_FOREGROUND)
    env.run(until=healthy)
    assert healthy.ok
    assert not doomed.ok
    assert isinstance(doomed.value, DiskFailure)
