"""Unit tests for disk dispatch disciplines (SSTF / C-SCAN)."""

import numpy as np
import pytest

from repro.disk import DiskParams
from repro.disk.scheduler import ScheduledDisk
from repro.sim import Environment


def make(discipline):
    env = Environment()
    disk = ScheduledDisk(env, DiskParams(), discipline=discipline)
    return env, disk


def completion_order(env, disk, requests):
    order = []
    for tag, req in requests:
        req.callbacks.append(lambda ev, t=tag: order.append(t))
    env.run()
    return order


def test_unknown_discipline_rejected():
    env = Environment()
    with pytest.raises(ValueError, match="unknown discipline"):
        ScheduledDisk(env, discipline="elevator9000")


def test_fifo_mode_behaves_like_base_disk():
    env, disk = make("fifo")
    reqs = [(i, disk.submit(np.array([i * 100]), "read")) for i in range(4)]
    assert completion_order(env, disk, reqs) == [0, 1, 2, 3]


def test_sstf_picks_nearest_first():
    env, disk = make("sstf")
    # first request pins the head near slot 1000 (run to completion so
    # the head position is established before the contenders queue)
    first = disk.submit(np.arange(995, 1000), "read")
    env.run(until=first)
    reqs = [
        ("far", disk.submit(np.array([5000]), "read")),
        ("near", disk.submit(np.array([1010]), "read")),
        ("mid", disk.submit(np.array([2500]), "read")),
    ]
    order = completion_order(env, disk, reqs)
    assert order == ["near", "mid", "far"]


def test_cscan_sweeps_upward_then_wraps():
    env, disk = make("cscan")
    first = disk.submit(np.arange(1995, 2000), "read")  # head -> 2000
    env.run(until=first)
    reqs = [
        ("below", disk.submit(np.array([100]), "read")),
        ("above_far", disk.submit(np.array([9000]), "read")),
        ("above_near", disk.submit(np.array([2100]), "read")),
    ]
    order = completion_order(env, disk, reqs)
    assert order == ["above_near", "above_far", "below"]


def test_priority_still_dominates_position():
    env, disk = make("sstf")
    first = disk.submit(np.arange(0, 64), "read")  # occupy
    reqs = [
        ("bg_near", disk.submit(np.array([70]), "write", priority=10)),
        ("fg_far", disk.submit(np.array([90000]), "read", priority=0)),
    ]
    order = completion_order(env, disk, reqs)
    assert order == ["fg_far", "bg_near"]


def test_cancelled_requests_skipped():
    env, disk = make("sstf")
    first = disk.submit(np.arange(0, 64), "read")
    doomed = disk.submit(np.array([70]), "read")
    keeper = disk.submit(np.array([500]), "read")
    assert doomed.cancel()
    env.run()
    assert not doomed.triggered
    assert keeper.triggered
    assert disk.total_requests == 2


def test_statistics_and_hooks_still_work():
    events = []
    env = Environment()
    disk = ScheduledDisk(
        env, DiskParams(), discipline="cscan",
        on_complete=lambda req, s, e: events.append(req.op),
    )
    disk.submit(np.arange(0, 8), "read")
    disk.submit(np.arange(100, 108), "write")
    env.run()
    assert disk.total_requests == 2
    assert disk.total_pages == {"read": 8, "write": 8}
    assert sorted(events) == ["read", "write"]


def test_sstf_reduces_total_seek_time_vs_fifo():
    """With a distance-dependent arm model, position-aware dispatch
    must beat FIFO on a scattered queue."""
    params = DiskParams(seek_distance_coef_s=5e-5)

    def run(discipline):
        env = Environment()
        disk = ScheduledDisk(env, params, discipline=discipline)
        rng = np.random.default_rng(5)
        starts = rng.integers(0, 200000, 64)
        for s in starts:
            disk.submit(np.arange(s, s + 8), "read")
        env.run()
        return env.now

    assert run("sstf") < run("fifo")
    assert run("cscan") < run("fifo")


def test_distance_coefficient_changes_cost():
    flat = DiskParams()
    dist = DiskParams(seek_distance_coef_s=1e-4)
    env1 = Environment()
    d1 = ScheduledDisk(env1, flat, discipline="fifo")
    r1 = d1.submit(np.array([100000]), "read")
    env1.run()
    env2 = Environment()
    d2 = ScheduledDisk(env2, dist, discipline="fifo")
    r2 = d2.submit(np.array([100000]), "read")
    env2.run()
    expected_extra = 1e-4 * np.sqrt(100000)
    assert r2.service_time == pytest.approx(
        r1.service_time + expected_extra
    )


def test_queue_length_in_scheduled_mode():
    env, disk = make("sstf")
    disk.submit(np.arange(0, 64), "read")
    disk.submit(np.array([100]), "read")
    disk.submit(np.array([200]), "read")
    assert disk.queue_length == 3
    env.run()
    assert disk.queue_length == 0
