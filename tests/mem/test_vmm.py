"""Integration tests for the virtual memory manager."""

import numpy as np
import pytest

from repro.disk import Disk, DiskParams
from repro.mem import MemoryParams, VirtualMemoryManager
from repro.mem.readahead import plan_block_reads
from repro.sim import Environment


def make_vmm(total_frames=128, **kw):
    env = Environment()
    disk = Disk(env, DiskParams())
    params = MemoryParams(total_frames=total_frames, **kw)
    vmm = VirtualMemoryManager(env, params, disk)
    return env, disk, vmm


def drive(env, gen):
    """Run a generator fragment as a process to completion."""
    def wrapper():
        yield from gen
        return "done"
    p = env.process(wrapper())
    env.run(until=p)


def test_params_defaults():
    p = MemoryParams(total_frames=1000)
    assert p.freepages_min == 20
    assert p.freepages_high == 40
    assert p.swap_slots == 4000


def test_params_validation():
    with pytest.raises(ValueError):
        MemoryParams(total_frames=0)
    with pytest.raises(ValueError):
        MemoryParams(total_frames=100, freepages_min=50, freepages_high=20)
    with pytest.raises(ValueError):
        MemoryParams(total_frames=100, swap_cluster=0)


def test_register_unregister_process():
    env, disk, vmm = make_vmm()
    vmm.register_process(1, 64)
    with pytest.raises(ValueError):
        vmm.register_process(1, 64)
    drive(env, vmm.touch(1, np.arange(10)))
    assert vmm.frames.used == 10
    vmm.unregister_process(1)
    assert vmm.frames.used == 0
    vmm.check_invariants()


def test_first_touch_is_zero_fill():
    env, disk, vmm = make_vmm()
    vmm.register_process(1, 64)
    drive(env, vmm.touch(1, np.arange(16)))
    assert vmm.stats.minor_faults == 16
    assert vmm.stats.major_faults == 0
    assert disk.total_requests == 0  # no disk I/O for zero-fill
    assert vmm.tables[1].resident_count == 16
    vmm.check_invariants()


def test_touch_records_access_and_dirty():
    env, disk, vmm = make_vmm()
    t = vmm.register_process(1, 64)
    drive(env, vmm.touch(1, np.arange(4), dirty=True))
    assert t.dirty[:4].all()
    assert t.last_ref[:4].max() >= 0


def test_retouch_resident_is_free():
    env, disk, vmm = make_vmm()
    vmm.register_process(1, 64)
    drive(env, vmm.touch(1, np.arange(8)))
    before = env.now
    drive(env, vmm.touch(1, np.arange(8)))
    assert env.now == before  # no faults, no time
    assert vmm.stats.minor_faults == 8


def test_memory_pressure_triggers_reclaim_and_swap():
    """Touching more than physical memory forces page-outs then -ins."""
    env, disk, vmm = make_vmm(total_frames=128)
    vmm.register_process(1, 256)
    drive(env, vmm.touch(1, np.arange(100), dirty=True))
    drive(env, vmm.touch(1, np.arange(100, 200), dirty=True))
    assert vmm.stats.pages_swapped_out > 0
    assert vmm.frames.free >= 0
    vmm.check_invariants()
    # now touch the original range again: major faults from swap
    drive(env, vmm.touch(1, np.arange(0, 50)))
    assert vmm.stats.pages_swapped_in > 0
    assert vmm.stats.major_faults > 0
    vmm.check_invariants()


def test_oversized_phase_rejected():
    env, disk, vmm = make_vmm(total_frames=128)
    vmm.register_process(1, 512)
    with pytest.raises(ValueError, match="chunk the phase"):
        drive(env, vmm.touch(1, np.arange(256)))


def test_clean_pages_discarded_without_io():
    """A clean page with a valid swap copy is evicted without a write."""
    env, disk, vmm = make_vmm(total_frames=64)
    vmm.register_process(1, 256)
    # fill memory with dirty pages, force them out, bring some back
    drive(env, vmm.touch(1, np.arange(50), dirty=True))
    drive(env, vmm.touch(1, np.arange(50, 100), dirty=True))  # evicts range 0..
    writes_after_fill = disk.total_pages["write"]
    drive(env, vmm.touch(1, np.arange(0, 30)))  # swap back in, clean
    # force eviction again by touching another range WITHOUT dirtying
    drive(env, vmm.touch(1, np.arange(100, 150), dirty=True))
    assert vmm.stats.pages_discarded > 0
    vmm.check_invariants()


def test_rewrite_dirty_page_reuses_slot():
    env, disk, vmm = make_vmm(total_frames=64)
    t = vmm.register_process(1, 256)
    drive(env, vmm.touch(1, np.arange(50), dirty=True))
    drive(env, vmm.touch(1, np.arange(50, 100), dirty=True))
    slots_first = t.swap_slot[np.arange(50)].copy()
    # bring back and re-dirty
    drive(env, vmm.touch(1, np.arange(0, 40), dirty=True))
    drive(env, vmm.touch(1, np.arange(100, 150), dirty=True))
    slots_second = t.swap_slot[np.arange(40)]
    evicted_again = ~t.present[np.arange(40)]
    # pages evicted twice keep their original slot (rewrite in place)
    assert np.array_equal(
        slots_second[evicted_again], slots_first[:40][evicted_again]
    )
    vmm.check_invariants()


def test_refaults_counted():
    env, disk, vmm = make_vmm(total_frames=64)
    vmm.register_process(1, 256)
    drive(env, vmm.touch(1, np.arange(50), dirty=True))
    drive(env, vmm.touch(1, np.arange(50, 100), dirty=True))
    drive(env, vmm.touch(1, np.arange(0, 20)))  # quick refault
    assert vmm.stats.refaults > 0


def test_victim_selector_hook_overrides_policy():
    env, disk, vmm = make_vmm(total_frames=64)
    vmm.register_process(1, 128)
    vmm.register_process(2, 128)
    drive(env, vmm.touch(1, np.arange(30), dirty=True))
    drive(env, vmm.touch(2, np.arange(20), dirty=True))

    from repro.mem.replacement import VictimBatch

    calls = []

    def selector(tables, count, cluster, protect=None):
        calls.append(count)
        t = tables[1]
        res = t.resident_pages()[:count]
        if res.size == 0:
            return []
        return [VictimBatch(1, res)]

    vmm.victim_selector = selector
    drive(env, vmm.touch(2, np.arange(20, 60), dirty=True))
    assert calls, "custom selector was not consulted"
    # only pid 1 pages were evicted
    assert vmm.tables[2].resident_count == 60
    vmm.check_invariants()


def test_on_flush_observer_sees_flush_order():
    env, disk, vmm = make_vmm(total_frames=64)
    vmm.register_process(1, 256)
    flushed = []
    vmm.on_flush = lambda pid, pages: flushed.append((pid, pages.copy()))
    drive(env, vmm.touch(1, np.arange(50), dirty=True))
    drive(env, vmm.touch(1, np.arange(50, 100), dirty=True))
    assert flushed
    total = sum(p.size for _, p in flushed)
    assert total == vmm.stats.pages_swapped_out + vmm.stats.pages_discarded


def test_swap_in_block_reads_large_runs():
    env, disk, vmm = make_vmm(total_frames=256)
    t = vmm.register_process(1, 512)
    drive(env, vmm.touch(1, np.arange(100), dirty=True))
    drive(env, vmm.touch(1, np.arange(100, 200), dirty=True))
    # plan block reads for the evicted prefix
    evicted = np.flatnonzero(~t.present[:100])
    groups = plan_block_reads(t, evicted, max_batch=64)
    reqs_before = disk.total_requests
    drive(env, vmm.swap_in_block(1, groups))
    reads = disk.total_requests - reqs_before
    assert t.present[evicted].all()
    assert reads == len(groups)
    vmm.check_invariants()


def test_reclaim_direct_call_frees_frames():
    env, disk, vmm = make_vmm(total_frames=64)
    vmm.register_process(1, 128)
    drive(env, vmm.touch(1, np.arange(60), dirty=True))
    free_before = vmm.frames.free
    drive(env, vmm.reclaim(16))
    assert vmm.frames.free >= free_before + 16
    vmm.check_invariants()


def test_evict_batch_keep_resident_cleans_without_evicting():
    env, disk, vmm = make_vmm(total_frames=64)
    t = vmm.register_process(1, 64)
    drive(env, vmm.touch(1, np.arange(10), dirty=True))
    from repro.mem.replacement import VictimBatch

    drive(env, vmm.evict_batch(VictimBatch(1, np.arange(10)), keep_resident=True))
    assert t.resident_count == 10          # still in memory
    assert not t.dirty[:10].any()          # but clean now
    assert (t.swap_slot[:10] >= 0).all()   # with swap copies
    assert disk.total_pages["write"] == 10
    vmm.check_invariants()


def test_unregister_mid_fault_purges_demand_entries():
    """Killing a process while its fault service is in flight must purge
    its demand entries: the victim-selector protect map sees no dead
    pid, and the unwinding touch generator's ``_remove_demand`` call
    tolerates the already-purged entry instead of raising."""
    from repro.sim import Interrupt

    env, disk, vmm = make_vmm(total_frames=64)
    vmm.register_process(1, 128)
    # swap a range out so re-touching it blocks on disk reads
    drive(env, vmm.touch(1, np.arange(40), dirty=True))
    drive(env, vmm.touch(1, np.arange(40, 80), dirty=True))
    assert vmm.stats.pages_swapped_out > 0

    def refault():
        try:
            yield from vmm.touch(1, np.arange(20))
        except Interrupt:
            pass

    p = env.process(refault())
    env.run(until=env.now + 1e-6)  # start the touch; disk I/O takes longer
    assert any(pid == 1 for pid, _ in vmm._active_demands)

    vmm.unregister_process(1)
    assert all(pid != 1 for pid, _ in vmm._active_demands)
    assert 1 not in vmm._active_protect()

    p.interrupt("process killed mid-fault")
    env.run(until=p)  # the finally-unwind must not raise
    assert vmm._active_demands == []
    assert vmm._purged_demands == set()  # purge set fully drained
    assert vmm.frames.used == 0  # teardown + unwind returned every frame

    # pid reuse after a mid-flight teardown starts from a clean slate
    t = vmm.register_process(1, 32)
    drive(env, vmm.touch(1, np.arange(8)))
    assert t.resident_count == 8
    vmm.check_invariants()


def test_remove_demand_unknown_entry_still_raises():
    """The purge tolerance is identity-keyed: an entry that was never
    registered (and never purged) is still a caller bug."""
    env, disk, vmm = make_vmm()
    vmm.register_process(1, 16)
    with pytest.raises(ValueError, match="not registered"):
        vmm._remove_demand((1, np.arange(4)))


def test_stats_snapshot():
    env, disk, vmm = make_vmm()
    vmm.register_process(1, 32)
    drive(env, vmm.touch(1, np.arange(4)))
    snap = vmm.stats.snapshot()
    assert snap["minor_faults"] == 4
    assert isinstance(snap, dict)
