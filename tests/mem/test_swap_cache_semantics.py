"""A focused battery for the swap-cache semantics (DESIGN §5, mem docs).

The model's rules, each pinned by a test:

1. first touch is zero-fill — no slot, no disk read;
2. page-out of a dirty (or never-written) page allocates/keeps a slot
   and writes it;
3. page-in keeps the slot (swap cache), arriving clean;
4. a clean resident page with a valid slot is discarded without I/O;
5. re-dirtying invalidates the copy but keeps the slot: the next
   page-out rewrites *in place* (no new allocation);
6. process exit frees every slot.
"""

import numpy as np
import pytest

from repro.disk import Disk, DiskParams
from repro.mem import MemoryParams, VirtualMemoryManager
from repro.mem.replacement import VictimBatch
from repro.sim import Environment


@pytest.fixture()
def node():
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(env, MemoryParams(total_frames=256), disk)
    vmm.register_process(1, 256)
    return env, disk, vmm


def drive(env, gen):
    def w():
        yield from gen
    p = env.process(w())
    env.run(until=p)


def evict(env, vmm, pages):
    drive(env, vmm.evict_batch(VictimBatch(1, np.asarray(pages))))


def test_rule1_first_touch_zero_fill(node):
    env, disk, vmm = node
    drive(env, vmm.touch(1, np.arange(16)))
    assert disk.total_requests == 0
    assert (vmm.tables[1].swap_slot[:16] == -1).all()


def test_rule2_pageout_allocates_and_writes(node):
    env, disk, vmm = node
    drive(env, vmm.touch(1, np.arange(16), dirty=True))
    evict(env, vmm, np.arange(16))
    assert disk.total_pages["write"] == 16
    assert (vmm.tables[1].swap_slot[:16] >= 0).all()
    # even a CLEAN page with no slot yet must be written (no backing)
    drive(env, vmm.touch(1, np.arange(16, 32), dirty=False))
    evict(env, vmm, np.arange(16, 32))
    assert disk.total_pages["write"] == 32


def test_rule3_pagein_keeps_slot_and_is_clean(node):
    env, disk, vmm = node
    t = vmm.tables[1]
    drive(env, vmm.touch(1, np.arange(16), dirty=True))
    evict(env, vmm, np.arange(16))
    slots = t.swap_slot[:16].copy()
    drive(env, vmm.touch(1, np.arange(16)))  # read back
    assert disk.total_pages["read"] == 16
    assert np.array_equal(t.swap_slot[:16], slots)  # swap cache kept
    assert not t.dirty[:16].any()


def test_rule4_clean_discard_is_free(node):
    env, disk, vmm = node
    drive(env, vmm.touch(1, np.arange(16), dirty=True))
    evict(env, vmm, np.arange(16))
    drive(env, vmm.touch(1, np.arange(16)))  # back in, clean + cached
    writes_before = disk.total_pages["write"]
    evict(env, vmm, np.arange(16))
    assert disk.total_pages["write"] == writes_before  # no I/O
    assert vmm.stats.pages_discarded == 16


def test_rule5_redirty_rewrites_in_place(node):
    env, disk, vmm = node
    t = vmm.tables[1]
    drive(env, vmm.touch(1, np.arange(16), dirty=True))
    evict(env, vmm, np.arange(16))
    slots = t.swap_slot[:16].copy()
    used = vmm.swap.used_slots
    drive(env, vmm.touch(1, np.arange(16), dirty=True))  # in + re-dirty
    assert t.dirty[:16].all()
    evict(env, vmm, np.arange(16))
    assert np.array_equal(t.swap_slot[:16], slots)  # same slots
    assert vmm.swap.used_slots == used               # nothing new allocated


def test_rule6_exit_frees_all_slots(node):
    env, disk, vmm = node
    drive(env, vmm.touch(1, np.arange(32), dirty=True))
    evict(env, vmm, np.arange(16))  # half on swap, half resident
    assert vmm.swap.used_slots == 16
    vmm.unregister_process(1)
    assert vmm.swap.used_slots == 0
    assert vmm.frames.used == 0
