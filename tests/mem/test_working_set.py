"""Unit tests for the working-set estimator."""

import numpy as np
import pytest

from repro.mem import PageTable, WorkingSetEstimator


def test_alpha_validation():
    with pytest.raises(ValueError):
        WorkingSetEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        WorkingSetEstimator(alpha=1.5)


def test_quantum_counts_distinct_references():
    ws = WorkingSetEstimator(alpha=1.0)
    t = PageTable(1, 32)
    t.make_resident(np.arange(10))
    ws.begin_quantum(1, now=100.0)
    t.record_access(np.arange(6), now=150.0)
    refs = ws.end_quantum(1, t, now=200.0)
    assert refs == 6
    assert ws.estimate(1) == 6


def test_older_references_not_counted():
    ws = WorkingSetEstimator(alpha=1.0)
    t = PageTable(1, 32)
    t.make_resident(np.arange(10))
    t.record_access(np.arange(10), now=50.0)  # before the quantum
    ws.begin_quantum(1, now=100.0)
    t.record_access(np.arange(3), now=150.0)
    assert ws.end_quantum(1, t, now=200.0) == 3


def test_ema_blends_quanta():
    ws = WorkingSetEstimator(alpha=0.5)
    t = PageTable(1, 64)
    t.make_resident(np.arange(40))
    ws.begin_quantum(1, 0.0)
    t.record_access(np.arange(10), now=1.0)
    ws.end_quantum(1, t, 10.0)
    ws.begin_quantum(1, 20.0)
    t.record_access(np.arange(30), now=21.0)
    ws.end_quantum(1, t, 30.0)
    assert ws.estimate(1) == 20  # 0.5*30 + 0.5*10


def test_estimate_before_any_quantum_uses_touched():
    ws = WorkingSetEstimator()
    t = PageTable(1, 32)
    t.make_resident(np.arange(5))
    t.record_access(np.arange(5), now=1.0)
    assert ws.estimate(1, t) == 5
    assert ws.estimate(1) == 0  # without a table, nothing known


def test_end_quantum_without_begin_counts_all_touched():
    ws = WorkingSetEstimator()
    t = PageTable(1, 32)
    t.make_resident(np.arange(7))
    t.record_access(np.arange(7), now=1.0)
    assert ws.end_quantum(1, t, now=5.0) == 7


def test_forget_clears_state():
    ws = WorkingSetEstimator()
    t = PageTable(1, 16)
    t.make_resident(np.arange(4))
    ws.begin_quantum(1, 0.0)
    t.record_access(np.arange(4), now=1.0)
    ws.end_quantum(1, t, 2.0)
    ws.forget(1)
    assert ws.estimate(1) == 0
