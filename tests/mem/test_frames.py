"""Unit tests for the frame pool."""

import pytest

from repro.mem import FramePool, OutOfFramesError


def test_initial_all_free():
    p = FramePool(100, 2, 4)
    assert p.free == 100
    assert p.used == 0


def test_invalid_construction():
    with pytest.raises(ValueError):
        FramePool(0, 0, 0)
    with pytest.raises(ValueError):
        FramePool(100, 10, 5)  # min > high
    with pytest.raises(ValueError):
        FramePool(100, 2, 200)  # high > total


def test_allocate_and_release():
    p = FramePool(10, 1, 2)
    p.allocate(4)
    assert p.free == 6
    p.release(3)
    assert p.free == 9


def test_over_allocate_raises():
    p = FramePool(10, 1, 2)
    with pytest.raises(OutOfFramesError):
        p.allocate(11)


def test_over_release_raises():
    p = FramePool(10, 1, 2)
    with pytest.raises(ValueError):
        p.release(1)


def test_negative_amounts_rejected():
    p = FramePool(10, 1, 2)
    with pytest.raises(ValueError):
        p.allocate(-1)
    with pytest.raises(ValueError):
        p.release(-1)


def test_below_min_watermark():
    p = FramePool(100, 10, 20)
    p.allocate(85)  # free = 15
    assert not p.below_min()
    assert p.below_min(incoming=6)  # 15 - 6 < 10
    p.allocate(10)  # free = 5
    assert p.below_min()


def test_deficit_to_high():
    p = FramePool(100, 10, 20)
    p.allocate(90)  # free = 10
    assert p.deficit_to_high() == 10
    assert p.deficit_to_high(incoming=5) == 15
    p.release(30)  # free = 40
    assert p.deficit_to_high() == 0
