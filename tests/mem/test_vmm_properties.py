"""Property-based tests: VMM invariants under random operation streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import Disk, DiskParams
from repro.mem import (
    GlobalLruPolicy,
    LargestProcessClockPolicy,
    MemoryParams,
    VirtualMemoryManager,
)
from repro.sim import Environment

N_PAGES = 192
N_FRAMES = 128


@st.composite
def op_stream(draw):
    """A random sequence of (pid, action, range) operations."""
    n_ops = draw(st.integers(3, 25))
    ops = []
    for _ in range(n_ops):
        pid = draw(st.integers(1, 3))
        kind = draw(st.sampled_from(["touch", "touch_dirty", "reclaim"]))
        start = draw(st.integers(0, N_PAGES - 2))
        length = draw(st.integers(1, min(48, N_PAGES - start)))
        ops.append((pid, kind, start, length))
    return ops


def execute(ops, policy):
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(
        env, MemoryParams(total_frames=N_FRAMES), disk, policy=policy
    )
    for pid in (1, 2, 3):
        vmm.register_process(pid, N_PAGES)

    def driver():
        for pid, kind, start, length in ops:
            pages = np.arange(start, start + length)
            if kind == "touch":
                yield from vmm.touch(pid, pages)
            elif kind == "touch_dirty":
                yield from vmm.touch(pid, pages, dirty=True)
            else:
                yield from vmm.reclaim(length)
            vmm.check_invariants()
            assert 0 <= vmm.frames.free <= vmm.frames.total

    p = env.process(driver())
    env.run(until=p)
    return vmm


@given(op_stream())
@settings(max_examples=40, deadline=None)
def test_invariants_hold_under_global_lru(ops):
    vmm = execute(ops, GlobalLruPolicy())
    vmm.check_invariants()
    # every touched page is resident or has a swap copy
    for table in vmm.tables.values():
        touched = table.last_ref > -np.inf
        ok = table.present | (table.swap_slot >= 0)
        assert np.all(ok[touched])


@given(op_stream())
@settings(max_examples=25, deadline=None)
def test_invariants_hold_under_clock_policy(ops):
    vmm = execute(ops, LargestProcessClockPolicy())
    vmm.check_invariants()


@given(op_stream())
@settings(max_examples=25, deadline=None)
def test_touched_data_never_lost(ops):
    """A page once dirtied is always recoverable: either resident or its
    swap copy is current (dirty bit clear when non-resident)."""
    vmm = execute(ops, GlobalLruPolicy())
    for table in vmm.tables.values():
        nonres = ~table.present
        # non-resident pages must not be flagged dirty
        assert not np.any(table.dirty[nonres])


@given(op_stream(), st.integers(0, 2))
@settings(max_examples=20, deadline=None)
def test_unregister_releases_everything(ops, victim_idx):
    vmm = execute(ops, GlobalLruPolicy())
    pid = (1, 2, 3)[victim_idx]
    before_used = vmm.swap.used_slots
    table = vmm.tables[pid]
    held_slots = int(np.count_nonzero(table.swap_slot >= 0))
    held_frames = table.resident_count
    free_frames = vmm.frames.free
    vmm.unregister_process(pid)
    assert vmm.frames.free == free_frames + held_frames
    assert vmm.swap.used_slots == before_used - held_slots
    vmm.check_invariants()
