"""Tests for the ASCII memory diagnostics."""

import numpy as np
import pytest

from repro.disk import Disk, DiskParams
from repro.mem import MemoryParams, PageTable, VirtualMemoryManager
from repro.mem.diagnostics import (
    render_node,
    render_residency,
    residency_codes,
)
from repro.sim import Environment


def test_residency_codes_cover_all_states():
    t = PageTable(1, 8)
    t.make_resident(np.array([0, 1]))
    t.record_access(np.array([0, 1]), now=1.0)
    t.record_access(np.array([1]), now=1.0, dirty=True)
    t.assign_slots(np.array([2]), np.array([50]))
    codes = residency_codes(t)
    assert codes[0] == 2   # resident clean
    assert codes[1] == 3   # resident dirty
    assert codes[2] == 1   # swapped
    assert codes[3] == 0   # untouched


def test_render_residency_shape_and_glyphs():
    t = PageTable(7, 128)
    t.make_resident(np.arange(64))
    t.record_access(np.arange(64), now=1.0, dirty=True)
    line = render_residency(t, width=16)
    assert line.startswith("pid 7")
    body = line.split("|")[1]
    assert len(body) == 16
    assert body[:8] == "█" * 8      # first half dirty
    assert body[8:] == "·" * 8      # second half untouched


def test_render_residency_validation():
    with pytest.raises(ValueError):
        render_residency(PageTable(1, 8), width=0)


def test_render_node_includes_all_processes():
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(env, MemoryParams(total_frames=128), disk)
    vmm.register_process(1, 64)
    vmm.register_process(2, 64)

    def proc():
        yield from vmm.touch(1, np.arange(32), dirty=True)
        yield from vmm.touch(2, np.arange(16))

    p = env.process(proc())
    env.run(until=p)
    out = render_node(vmm, width=32)
    assert "pid 1" in out and "pid 2" in out
    assert "frames 48/128" in out
    assert "legend" in out
    assert "untouched" in out
