"""Unit + property tests for the page table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import PageTable


def make(n=64, pid=1):
    return PageTable(pid, n)


def test_initial_state():
    t = make(10)
    assert t.resident_count == 0
    assert t.resident_pages().size == 0
    assert t.swapped_pages().size == 0
    assert t.touched_pages().size == 0
    t.check_invariants()


def test_invalid_size():
    with pytest.raises(ValueError):
        PageTable(1, 0)


def test_make_resident_and_access():
    t = make()
    t.make_resident(np.array([1, 2, 3]))
    assert t.resident_count == 3
    t.record_access(np.array([1, 2, 3]), now=5.0)
    assert np.all(t.last_ref[[1, 2, 3]] == 5.0)
    assert t.referenced[[1, 2, 3]].all()
    assert not t.dirty[[1, 2, 3]].any()
    t.check_invariants()


def test_make_resident_twice_rejected():
    t = make()
    t.make_resident(np.array([1]))
    with pytest.raises(ValueError):
        t.make_resident(np.array([1]))


def test_record_access_nonresident_rejected():
    t = make()
    with pytest.raises(ValueError):
        t.record_access(np.array([5]), now=1.0)


def test_dirty_scalar_and_mask():
    t = make()
    t.make_resident(np.arange(4))
    t.record_access(np.arange(4), now=1.0, dirty=True)
    assert t.dirty[:4].all()

    t2 = make()
    t2.make_resident(np.arange(4))
    mask = np.array([True, False, True, False])
    t2.record_access(np.arange(4), now=1.0, dirty=mask)
    assert np.array_equal(t2.dirty[:4], mask)


def test_dirty_mask_shape_mismatch_rejected():
    t = make()
    t.make_resident(np.arange(4))
    with pytest.raises(ValueError):
        t.record_access(np.arange(4), now=1.0, dirty=np.array([True]))


def test_evict_clears_bits():
    t = make()
    t.make_resident(np.arange(4))
    t.record_access(np.arange(4), now=1.0, dirty=True)
    t.assign_slots(np.arange(4), np.arange(100, 104))
    t.evict(np.arange(4))
    assert t.resident_count == 0
    assert not t.dirty[:4].any()
    assert not t.referenced[:4].any()
    assert np.array_equal(t.swapped_pages(), np.arange(4))
    t.check_invariants()


def test_evict_nonresident_rejected():
    t = make()
    with pytest.raises(ValueError):
        t.evict(np.array([0]))


def test_oldest_resident_orders_by_age():
    t = make()
    t.make_resident(np.arange(6))
    for i, age in enumerate([5.0, 1.0, 3.0, 2.0, 6.0, 4.0]):
        t.record_access(np.array([i]), now=age)
    oldest = t.oldest_resident(3)
    assert set(oldest) == {1, 3, 2}  # ages 1, 2, 3


def test_oldest_resident_all_when_fewer():
    t = make()
    t.make_resident(np.array([7, 9]))
    assert set(t.oldest_resident(10)) == {7, 9}


def test_slot_assignment_and_release():
    t = make()
    t.assign_slots(np.array([3, 4]), np.array([50, 51]))
    assert t.swap_slot[3] == 50
    freed = t.release_slots(np.array([3]))
    assert list(freed) == [50]
    assert t.swap_slot[3] == -1
    with pytest.raises(ValueError):
        t.release_slots(np.array([3]))


def test_dirty_and_clean_resident_sets():
    t = make()
    t.make_resident(np.arange(4))
    t.record_access(np.arange(4), now=1.0)
    # page 0: clean with slot -> discardable
    t.assign_slots(np.array([0]), np.array([9]))
    # page 1: dirty with slot -> needs rewrite
    t.assign_slots(np.array([1]), np.array([10]))
    t.record_access(np.array([1]), now=2.0, dirty=True)
    # pages 2,3: no slot -> need write regardless of dirty
    assert set(t.clean_resident_pages()) == {0}
    assert set(t.dirty_resident_pages()) == {1, 2, 3}


def test_clear_referenced_partial_and_full():
    t = make()
    t.make_resident(np.arange(4))
    t.record_access(np.arange(4), now=1.0)
    t.clear_referenced(np.array([0, 1]))
    assert not t.referenced[:2].any()
    assert t.referenced[2:4].all()
    t.clear_referenced()
    assert not t.referenced.any()


def test_absent_preserves_order():
    t = make()
    t.make_resident(np.array([2, 5]))
    out = t.absent(np.array([5, 1, 2, 9]))
    assert list(out) == [1, 9]


@given(st.lists(st.integers(0, 63), min_size=1, max_size=40, unique=True),
       st.integers(0, 1))
@settings(max_examples=50, deadline=None)
def test_property_resident_evict_roundtrip(pages, dirty_flag):
    """Residency round-trips and invariants hold under access/evict."""
    t = make(64)
    arr = np.asarray(pages, dtype=np.int64)
    t.make_resident(arr)
    t.record_access(arr, now=1.0, dirty=bool(dirty_flag))
    t.check_invariants()
    assert t.resident_count == arr.size
    # every page that needs a write gets a slot before eviction
    need = t.dirty_resident_pages()
    t.assign_slots(need, np.arange(need.size) + 1000)
    t.evict(arr)
    t.check_invariants()
    assert t.resident_count == 0
    # all touched pages must now be on swap
    assert set(t.swapped_pages()) == set(pages)
