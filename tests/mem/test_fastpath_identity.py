"""The zero-perturbation guarantee for the steady-state fast path.

With the fast path on (resident-run batching, coalesced CPU timeouts,
callback-chained disk dispatch, fused fault CPU charges) every
simulation *output* must be bit-for-bit identical to a slow-mode run —
the transforms only remove bookkeeping events, never change simulated
timing.  ``events_processed`` is the one legitimate difference (fewer
events exist in fast mode), so it is asserted to *drop*, not to match.

Checked across every paper policy combination, a fault-injected
configuration, and a small randomized property sweep over seeds and
scales.
"""

import numpy as np
import pytest

from repro.core.policies import PAPER_POLICIES
from repro.experiments.runner import GangConfig, run_experiment
from repro.faults import FaultRates
from repro.gang.job import Job
from repro.sim import set_fast_path_enabled


@pytest.fixture(autouse=True)
def _restore_fast_path():
    set_fast_path_enabled(True)
    yield
    set_fast_path_enabled(True)


def _signature(result):
    """Everything deterministic a run produces, minus the event count."""
    return (
        result.makespan,
        result.completions,
        result.pages_read,
        result.pages_written,
        result.switch_count,
        result.vmm_stats,
        result.evicted,
        result.fault_summary,
        [
            (e.node, e.op, e.pages, e.start, e.end, e.pid)
            for e in result.collector.paging
        ],
    )


def _run_both(cfg):
    set_fast_path_enabled(True)
    Job._next_jid = 1
    fast = run_experiment(cfg)
    set_fast_path_enabled(False)
    Job._next_jid = 1
    slow = run_experiment(cfg)
    set_fast_path_enabled(True)
    return fast, slow


@pytest.mark.parametrize("policy", PAPER_POLICIES)
def test_fast_and_slow_runs_identical(policy):
    cfg = GangConfig("LU", "C", nprocs=2, policy=policy, seed=1, scale=0.05)
    fast, slow = _run_both(cfg)
    assert _signature(fast) == _signature(slow)
    # the fast path exists to remove events; equality would mean it
    # never engaged on a paging-heavy cell
    assert fast.events_processed < slow.events_processed


def test_fast_and_slow_identical_under_faults():
    cfg = GangConfig(
        "LU", "C", nprocs=2, policy="so/ao/ai/bg", seed=3, scale=0.05,
        faults=FaultRates(
            disk_error_rate=0.02, disk_latency_rate=0.05,
            straggler_rate=0.1, record_loss_rate=0.1,
        ),
    )
    fast, slow = _run_both(cfg)
    assert _signature(fast) == _signature(slow)
    assert fast.fault_summary == slow.fault_summary


def test_fast_and_slow_identical_randomized():
    """Property sweep: random seeds/scales/benchmarks, both modes agree."""
    rng = np.random.default_rng(1234)
    for _ in range(4):
        policy = PAPER_POLICIES[rng.integers(len(PAPER_POLICIES))]
        cfg = GangConfig(
            "LU", "C",
            nprocs=int(rng.integers(1, 3)),
            policy=policy,
            seed=int(rng.integers(0, 100)),
            scale=0.05,
            max_events=2_000_000,
        )
        fast, slow = _run_both(cfg)
        assert _signature(fast) == _signature(slow), cfg.label()


def test_disabling_fast_path_restores_event_stream():
    """Slow mode must reproduce the historical per-chunk event structure:
    two slow runs of the same config agree event-for-event in count."""
    cfg = GangConfig("LU", "C", nprocs=2, policy="lru", seed=1, scale=0.05)
    set_fast_path_enabled(False)
    Job._next_jid = 1
    first = run_experiment(cfg)
    Job._next_jid = 1
    second = run_experiment(cfg)
    assert first.events_processed == second.events_processed
    assert _signature(first) == _signature(second)
