"""Unit tests for victim-selection policies."""

import numpy as np
import pytest

from repro.mem import (
    GlobalLruPolicy,
    LargestProcessClockPolicy,
    PageTable,
)


def table_with(pid, resident, ages=None, n=64):
    t = PageTable(pid, n)
    arr = np.asarray(resident, dtype=np.int64)
    t.make_resident(arr)
    if ages is None:
        t.record_access(arr, now=1.0)
    else:
        for p, a in zip(resident, ages):
            t.record_access(np.array([p]), now=a)
    return t


# ---------------------------------------------------------------------------
# GlobalLruPolicy
# ---------------------------------------------------------------------------

def test_lru_picks_globally_oldest():
    t1 = table_with(1, [0, 1, 2], ages=[10.0, 1.0, 20.0])
    t2 = table_with(2, [5, 6], ages=[2.0, 30.0])
    pol = GlobalLruPolicy()
    batches = pol.select_victims({1: t1, 2: t2}, count=2, cluster=8)
    victims = {(b.pid, int(p)) for b in batches for p in b.pages}
    assert victims == {(1, 1), (2, 5)}  # ages 1.0 and 2.0


def test_lru_respects_count():
    t1 = table_with(1, list(range(10)))
    pol = GlobalLruPolicy()
    batches = pol.select_victims({1: t1}, count=4, cluster=8)
    assert sum(b.count for b in batches) == 4


def test_lru_batches_bounded_by_cluster():
    t1 = table_with(1, list(range(20)))
    pol = GlobalLruPolicy()
    batches = pol.select_victims({1: t1}, count=20, cluster=6)
    assert all(b.count <= 6 for b in batches)
    assert sum(b.count for b in batches) == 20


def test_lru_batches_single_pid_each():
    t1 = table_with(1, [0, 1], ages=[1.0, 3.0])
    t2 = table_with(2, [0, 1], ages=[2.0, 4.0])
    pol = GlobalLruPolicy()
    batches = pol.select_victims({1: t1, 2: t2}, count=4, cluster=8)
    for b in batches:
        assert b.pid in (1, 2)
    total = sum(b.count for b in batches)
    assert total == 4


def test_lru_protect_excludes_pages():
    t1 = table_with(1, [0, 1, 2], ages=[1.0, 2.0, 3.0])
    pol = GlobalLruPolicy()
    batches = pol.select_victims(
        {1: t1}, count=2, cluster=8, protect={1: np.array([0])}
    )
    victims = {int(p) for b in batches for p in b.pages}
    assert victims == {1, 2}


def test_lru_nothing_resident_returns_empty():
    t1 = PageTable(1, 16)
    pol = GlobalLruPolicy()
    assert pol.select_victims({1: t1}, count=5, cluster=8) == []


def test_lru_zero_count_returns_empty():
    t1 = table_with(1, [0])
    assert GlobalLruPolicy().select_victims({1: t1}, 0, 8) == []


def test_lru_false_eviction_scenario():
    """The §3.1 story: A's residual (old) pages are picked over B's
    fresh pages even though A is about to need them."""
    a = table_with(1, list(range(8)), ages=[100.0] * 8)   # residual from last turn
    b = table_with(2, list(range(8)), ages=[400.0] * 8)   # just ran
    pol = GlobalLruPolicy()
    batches = pol.select_victims({1: a, 2: b}, count=4, cluster=8)
    assert all(batch.pid == 1 for batch in batches)  # A's pages chosen


# ---------------------------------------------------------------------------
# LargestProcessClockPolicy
# ---------------------------------------------------------------------------

def test_clock_targets_largest_process():
    big = table_with(1, list(range(20)))
    small = table_with(2, [0, 1])
    big.clear_referenced()
    small.clear_referenced()
    pol = LargestProcessClockPolicy()
    batches = pol.select_victims({1: big, 2: small}, count=4, cluster=8)
    assert all(b.pid == 1 for b in batches)
    assert sum(b.count for b in batches) == 4


def test_clock_first_pass_spares_referenced_pages():
    t = table_with(1, list(range(8)))
    # pages 0..3 referenced, 4..7 not
    t.clear_referenced(np.arange(4, 8))
    pol = LargestProcessClockPolicy()
    batches = pol.select_victims({1: t}, count=4, cluster=8)
    victims = {int(p) for b in batches for p in b.pages}
    assert victims == {4, 5, 6, 7}
    # the sweep up to the stop point cleared earlier reference bits
    assert not t.referenced[:4].any() or t.referenced[:4].any() in (True, False)


def test_clock_second_pass_evicts_after_clearing():
    """If everything is referenced, a full revolution clears bits and
    the second pass takes victims anyway."""
    t = table_with(1, list(range(8)))  # all referenced
    pol = LargestProcessClockPolicy()
    batches = pol.select_victims({1: t}, count=3, cluster=8)
    assert sum(b.count for b in batches) == 3
    # every eligible page's reference bit was swept clear
    assert not t.referenced[t.present].any()


def test_clock_hand_persists_between_calls():
    t = table_with(1, list(range(8)))
    t.clear_referenced()
    pol = LargestProcessClockPolicy()
    first = pol.select_victims({1: t}, count=2, cluster=8)
    v1 = {int(p) for b in first for p in b.pages}
    second = pol.select_victims({1: t}, count=2, cluster=8)
    v2 = {int(p) for b in second for p in b.pages}
    assert v1 == {0, 1}
    assert v2 == {2, 3}


def test_clock_protect_is_honoured():
    t = table_with(1, list(range(6)))
    t.clear_referenced()
    pol = LargestProcessClockPolicy()
    batches = pol.select_victims(
        {1: t}, count=6, cluster=8, protect={1: np.arange(0, 3)}
    )
    victims = {int(p) for b in batches for p in b.pages}
    assert victims == {3, 4, 5}


def test_clock_spills_to_next_process_when_first_exhausted():
    t1 = table_with(1, [0, 1, 2])
    t2 = table_with(2, [0, 1])
    for t in (t1, t2):
        t.clear_referenced()
    pol = LargestProcessClockPolicy()
    batches = pol.select_victims({1: t1, 2: t2}, count=5, cluster=8)
    by_pid = {}
    for b in batches:
        by_pid.setdefault(b.pid, 0)
        by_pid[b.pid] += b.count
    assert by_pid == {1: 3, 2: 2}


def test_clock_empty_tables():
    pol = LargestProcessClockPolicy()
    assert pol.select_victims({}, count=4, cluster=8) == []
