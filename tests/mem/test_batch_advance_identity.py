"""The zero-perturbation guarantee for the batch-advance event core.

Three execution tiers exist (DESIGN.md "Execution cores"): the scalar
oracle (every event dispatched through the heap), the numpy
batch-advance tier (runs of same-type non-interacting events advanced
as array ops), and the compiled tier (numba-jitted residual kernels —
which run *interpreted* on hosts without numba, so the tier's logic is
identity-tested everywhere).  Every simulation output must be
bit-for-bit identical across all three, for every paper policy, at two
workload scales.

Unlike the PR 5 fast path (which deletes bookkeeping events outright),
batch-advance only *absorbs* dispatches: each absorbed event is
counted in ``events_absorbed``, so the logical event count
``events_simulated`` is asserted *equal* across tiers while
``events_dispatched`` drops.

The fault-injection run checks the interaction-boundary rule: a disk
fault plan makes every request a potential injection point, so the
closed-system proof fails, batches split down to scalar dispatch, and
the fault responses (retries, spikes, fallbacks) land identically.
"""

import pytest

from repro.core.policies import PAPER_POLICIES
from repro.experiments.runner import GangConfig, run_experiment
from repro.faults import FaultRates
from repro.gang.job import Job
from repro.sim import (
    set_batch_advance_enabled,
    set_compiled_enabled,
    set_fast_path_enabled,
)

SCALES = (0.05, 0.1)

#: policies whose demand fills satisfy the closed-system entry proof.
#: The ``ai`` mechanism (adaptive page-in of recorded flush lists,
#: §3.3) issues its own block swap-ins around every switch, so demand
#: fills under ``ai`` overlap other in-flight work and the gate
#: correctly keeps them scalar — identity still holds, absorption does
#: not happen.
ABSORBING_POLICIES = frozenset(("lru", "so", "so/ao", "so/ao/bg"))


@pytest.fixture(autouse=True)
def _restore_tiers():
    yield
    set_fast_path_enabled(True)
    set_batch_advance_enabled(True)
    set_compiled_enabled(False)


def _signature(result):
    """Everything deterministic a run produces, minus the event counts."""
    return (
        result.makespan,
        result.completions,
        result.pages_read,
        result.pages_written,
        result.switch_count,
        result.vmm_stats,
        result.evicted,
        result.fault_summary,
        [
            (e.node, e.op, e.pages, e.start, e.end, e.pid)
            for e in result.collector.paging
        ],
    )


def _run(cfg, tier):
    """One run under a named execution tier.

    ``oracle`` is the full scalar loop (no PR 5 fast path either);
    ``dispatch`` keeps the fast path but dispatches every remaining
    event through the heap; ``batch`` adds the numpy batch-advance
    tier; ``compiled`` additionally consults the compiled kernels.
    """
    set_fast_path_enabled(tier != "oracle")
    set_batch_advance_enabled(tier in ("batch", "compiled"))
    set_compiled_enabled(tier == "compiled")
    Job._next_jid = 1
    try:
        return run_experiment(cfg)
    finally:
        set_fast_path_enabled(True)
        set_batch_advance_enabled(True)
        set_compiled_enabled(False)


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("policy", PAPER_POLICIES)
def test_tiers_identical(policy, scale):
    cfg = GangConfig("LU", "C", nprocs=2, policy=policy, seed=1, scale=scale)
    oracle = _run(cfg, "oracle")
    dispatch = _run(cfg, "dispatch")
    batch = _run(cfg, "batch")
    compiled = _run(cfg, "compiled")

    sig = _signature(oracle)
    assert _signature(dispatch) == sig
    assert _signature(batch) == sig
    assert _signature(compiled) == sig

    # absorbing a dispatch is bookkeeping-neutral: the logical event
    # count matches the scalar dispatcher exactly...
    assert batch.events_simulated == dispatch.events_simulated
    assert compiled.events_simulated == dispatch.events_simulated
    # ...while the loop itself spins measurably fewer times — where
    # the closed-system entry proof can hold at all
    if policy in ABSORBING_POLICIES:
        assert batch.events_dispatched < dispatch.events_dispatched
        assert compiled.events_dispatched < dispatch.events_dispatched
    else:
        assert batch.events_dispatched == dispatch.events_dispatched
        assert compiled.events_dispatched == dispatch.events_dispatched


@pytest.mark.parametrize("tier", ("batch", "compiled"))
def test_faults_split_batches_at_injection_points(tier):
    """A fault plan turns every disk request into a potential injection
    point, so the closed-system entry proof must fail and the run must
    degrade to scalar dispatch — same outputs, same fault responses,
    and *zero* absorbed events (every batch boundary splits)."""
    cfg = GangConfig(
        "LU", "C", nprocs=2, policy="so/ao/bg", seed=3, scale=0.05,
        faults=FaultRates(
            disk_error_rate=0.02, disk_latency_rate=0.05,
            straggler_rate=0.1,
        ),
    )
    dispatch = _run(cfg, "dispatch")
    batched = _run(cfg, tier)
    assert _signature(batched) == _signature(dispatch)
    assert batched.fault_summary == dispatch.fault_summary
    assert batched.events_simulated == dispatch.events_simulated
    # no absorption: with injection points live, batch-advance may
    # never replay events under a local clock
    assert batched.events_dispatched == dispatch.events_dispatched


def test_fault_free_run_absorbs_events():
    """Control for the chaos test: the same cell without a fault plan
    must absorb events (the gate opens once injection points vanish)."""
    cfg = GangConfig(
        "LU", "C", nprocs=2, policy="so/ao/bg", seed=3, scale=0.05,
    )
    dispatch = _run(cfg, "dispatch")
    batched = _run(cfg, "batch")
    assert _signature(batched) == _signature(dispatch)
    assert batched.events_dispatched < dispatch.events_dispatched
