"""Unit tests for the Linux 2.2-style page-aging policy."""

import numpy as np
import pytest

from repro.mem import PageAgingPolicy, PageTable


def table_with(pid, resident, n=64):
    t = PageTable(pid, n)
    arr = np.asarray(resident, dtype=np.int64)
    t.make_resident(arr)
    t.record_access(arr, now=1.0)
    return t


def test_referenced_pages_survive_first_sweeps():
    t = table_with(1, range(8))
    pol = PageAgingPolicy()
    # ask for a couple of victims: ages must decay before any eviction
    batches = pol.select_victims({1: t}, count=2, cluster=8)
    victims = {int(p) for b in batches for p in b.pages}
    assert len(victims) == 2
    # the sweep cleared reference bits along the way
    assert not t.referenced[list(victims)].any()


def test_idle_pages_decay_to_eviction():
    t = table_with(1, range(8))
    t.clear_referenced()  # all idle
    pol = PageAgingPolicy()
    batches = pol.select_victims({1: t}, count=8, cluster=8)
    assert sum(b.count for b in batches) == 8


def test_hot_pages_outlive_cold_pages():
    t = table_with(1, range(8))
    pol = PageAgingPolicy()
    ages = pol._age_array(t)
    # pages 0..3 are hot: keep their reference bits set across sweeps
    for _ in range(3):
        pol.select_victims({1: t}, count=2, cluster=8)
        t.referenced[:4] = True  # process re-touches its hot set
    hot, cold = ages[:4], ages[4:8]
    # evicted cold pages stay at zero; hot pages accumulated age
    assert hot.min() > cold.min()


def test_protect_is_honoured():
    t = table_with(1, range(8))
    t.clear_referenced()
    pol = PageAgingPolicy()
    batches = pol.select_victims(
        {1: t}, count=8, cluster=8, protect={1: np.arange(4)}
    )
    victims = {int(p) for b in batches for p in b.pages}
    assert victims == {4, 5, 6, 7}


def test_largest_process_targeted_first():
    big = table_with(1, range(20))
    small = table_with(2, range(4))
    for t in (big, small):
        t.clear_referenced()
    pol = PageAgingPolicy()
    batches = pol.select_victims({1: big, 2: small}, count=6, cluster=8)
    assert all(b.pid == 1 for b in batches)


def test_zero_count_and_empty_tables():
    pol = PageAgingPolicy()
    assert pol.select_victims({}, count=4, cluster=8) == []
    t = table_with(1, range(4))
    assert pol.select_victims({1: t}, count=0, cluster=8) == []


def test_age_state_survives_across_calls():
    t = table_with(1, range(16))
    pol = PageAgingPolicy()
    pol.select_victims({1: t}, count=1, cluster=8)
    after = pol._age_array(t)
    fresh = np.full(t.num_pages, PageAgingPolicy.AGE_START, dtype=np.int16)
    # the decay from the first call persists in the policy's state
    assert not np.array_equal(after, fresh)
    assert pol._age_array(t) is after  # same backing array, not rebuilt


def test_exited_process_age_state_reaped():
    """Age arrays of pids with no page table are dropped on the next
    selection call — open-system job streams must not grow ``_ages``
    by one array per process that ever ran."""
    pol = PageAgingPolicy()
    tables = {pid: table_with(pid, range(8)) for pid in (1, 2, 3)}
    for t in tables.values():
        pol._age_array(t)
    assert set(pol._ages) == {1, 2, 3}
    # pids 2 and 3 exit; their tables disappear from the vmm mapping
    del tables[2], tables[3]
    pol.select_victims(tables, count=1, cluster=8)
    assert set(pol._ages) == {1}
    # a reused pid with a different address-space size gets a fresh array
    bigger = table_with(2, range(4), n=128)
    assert pol._age_array(bigger).size == 128


def test_thrash_resistance_vs_clock():
    """Aging needs more sweeps than a plain clock to strip an idle set —
    the ref. [17] protection property."""
    from repro.mem import LargestProcessClockPolicy

    def sweeps_to_strip(policy):
        t = table_with(1, range(16))
        # hot bits set once (just accessed), then the set goes idle
        n = 0
        while t.resident_count and n < 30:
            batches = policy.select_victims({1: t}, count=4, cluster=8)
            for b in batches:
                t.evict(b.pages[t.present[b.pages]])
            n += 1
        return n

    assert sweeps_to_strip(PageAgingPolicy()) >= sweeps_to_strip(
        LargestProcessClockPolicy()
    )
