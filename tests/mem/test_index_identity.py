"""The zero-perturbation guarantee for the page-state index.

Runs with the incremental :class:`~repro.mem.index.PageIndex` enabled
must be bit-for-bit identical to scan-mode runs (every view recomputed
from the raw arrays on each call) — the index is a pure compute-saving
cache and must never change a simulated trajectory.  Checked across
every paper policy combination and a fault-injected configuration.
"""

import pytest

from repro.core.policies import PAPER_POLICIES
from repro.experiments.runner import GangConfig, run_experiment
from repro.faults import FaultRates
from repro.mem import set_index_enabled


@pytest.fixture(autouse=True)
def _restore_index_mode():
    set_index_enabled(True)
    yield
    set_index_enabled(True)


def _signature(result):
    return (
        result.makespan,
        result.completions,
        result.events_processed,
        result.pages_read,
        result.pages_written,
        result.switch_count,
        result.vmm_stats,
    )


def _run_both(cfg):
    set_index_enabled(True)
    indexed = run_experiment(cfg)
    set_index_enabled(False)
    scan = run_experiment(cfg)
    set_index_enabled(True)
    return indexed, scan


@pytest.mark.parametrize("policy", PAPER_POLICIES)
def test_indexed_and_scan_runs_identical(policy):
    cfg = GangConfig("LU", "C", nprocs=2, policy=policy, seed=1, scale=0.05)
    indexed, scan = _run_both(cfg)
    assert _signature(indexed) == _signature(scan)


def test_indexed_and_scan_identical_under_faults():
    cfg = GangConfig(
        "LU", "C", nprocs=2, policy="so/ao/ai/bg", seed=3, scale=0.05,
        faults=FaultRates(
            disk_error_rate=0.02, disk_latency_rate=0.05,
            straggler_rate=0.1, record_loss_rate=0.1,
        ),
    )
    indexed, scan = _run_both(cfg)
    assert _signature(indexed) == _signature(scan)
    assert indexed.fault_summary == scan.fault_summary
