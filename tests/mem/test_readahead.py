"""Unit tests for fault planning / read-ahead."""

import numpy as np
import pytest

from repro.mem import PageTable
from repro.mem.readahead import (
    dedupe_preserve_order,
    plan_block_reads,
    plan_swapins,
)


def swapped_table(n=64, pages=(), slots=()):
    """A table where ``pages`` are swapped out at ``slots``."""
    t = PageTable(1, n)
    arr = np.asarray(pages, dtype=np.int64)
    if arr.size:
        t.make_resident(arr)
        t.record_access(arr, now=1.0)
        t.assign_slots(arr, np.asarray(slots, dtype=np.int64))
        t.evict(arr)
    return t


def test_dedupe_preserve_order():
    out = dedupe_preserve_order(np.array([3, 1, 3, 2, 1]))
    assert list(out) == [3, 1, 2]


def test_zero_fill_only():
    t = PageTable(1, 16)
    groups = plan_swapins(t, np.array([4, 5, 6]), window=16)
    assert len(groups) == 1
    assert groups[0].is_zero_fill
    assert list(groups[0].pages) == [4, 5, 6]


def test_swapin_groups_by_slot_window():
    # pages 0..7 swapped at contiguous slots 100..107, window 4
    t = swapped_table(pages=range(8), slots=range(100, 108))
    groups = plan_swapins(t, np.arange(8), window=4)
    assert len(groups) == 2
    assert list(groups[0].pages) == [0, 1, 2, 3]
    assert list(groups[1].pages) == [4, 5, 6, 7]
    assert not groups[0].is_zero_fill


def test_readahead_pulls_unrequested_pages():
    """Pages within the slot window come in even if not demanded."""
    t = swapped_table(pages=[0, 1, 2], slots=[100, 101, 102])
    groups = plan_swapins(t, np.array([0]), window=16)
    assert len(groups) == 1
    assert list(groups[0].pages) == [0, 1, 2]


def test_scattered_slots_one_group_each():
    """Pages whose slots are far apart cannot share a read."""
    t = swapped_table(pages=[0, 1, 2], slots=[100, 500, 900])
    groups = plan_swapins(t, np.arange(3), window=16)
    assert len(groups) == 3
    assert all(g.count == 1 for g in groups)


def test_mixed_zero_and_swap_preserves_touch_order():
    t = swapped_table(n=32, pages=[10], slots=[200])
    # touch order: untouched 0, swapped 10, untouched 1
    groups = plan_swapins(t, np.array([0, 10, 1]), window=8)
    kinds = [g.is_zero_fill for g in groups]
    assert kinds == [True, False, True]
    assert list(groups[0].pages) == [0]
    assert list(groups[1].pages) == [10]
    assert list(groups[2].pages) == [1]


def test_groups_are_disjoint_and_cover_demand():
    t = swapped_table(pages=range(20), slots=range(300, 320))
    demand = np.array([5, 0, 17, 3, 11])
    groups = plan_swapins(t, demand, window=6)
    got = np.concatenate([g.pages for g in groups])
    assert len(np.unique(got)) == got.size  # disjoint
    assert set(demand).issubset(set(got))   # covered


def test_demand_with_duplicates_ok():
    t = swapped_table(pages=[0], slots=[100])
    groups = plan_swapins(t, np.array([0, 0, 0]), window=4)
    assert len(groups) == 1


def test_resident_demand_rejected():
    t = PageTable(1, 8)
    t.make_resident(np.array([0]))
    with pytest.raises(ValueError):
        plan_swapins(t, np.array([0]), window=4)


def test_bad_window_rejected():
    t = PageTable(1, 8)
    with pytest.raises(ValueError):
        plan_swapins(t, np.array([0]), window=0)


def test_empty_demand():
    t = PageTable(1, 8)
    assert plan_swapins(t, np.array([], dtype=np.int64), window=4) == []


def test_slots_match_pages_in_groups():
    t = swapped_table(pages=[4, 5, 6], slots=[100, 101, 102])
    groups = plan_swapins(t, np.array([4]), window=16)
    g = groups[0]
    assert np.array_equal(t.swap_slot[g.pages], g.slots)


# ---------------------------------------------------------------------------
# plan_block_reads (adaptive page-in planning)
# ---------------------------------------------------------------------------

def test_block_reads_batch_by_slot_order():
    t = swapped_table(pages=range(10), slots=range(100, 110))
    groups = plan_block_reads(t, np.arange(10), max_batch=4)
    assert [g.count for g in groups] == [4, 4, 2]
    # first batch covers the lowest slots
    assert list(groups[0].slots) == [100, 101, 102, 103]


def test_block_reads_skip_resident_and_unswapped():
    t = swapped_table(n=32, pages=[0, 1], slots=[100, 101])
    t.make_resident(np.array([5]))  # resident page in the list
    groups = plan_block_reads(t, np.array([0, 5, 1, 9]), max_batch=8)
    got = np.concatenate([g.pages for g in groups])
    assert set(got) == {0, 1}


def test_block_reads_empty():
    t = PageTable(1, 8)
    assert plan_block_reads(t, np.array([], dtype=np.int64), 8) == []
    assert plan_block_reads(t, np.array([3]), 8) == []


def test_block_reads_bad_batch():
    t = PageTable(1, 8)
    with pytest.raises(ValueError):
        plan_block_reads(t, np.array([0]), 0)


def test_block_reads_slot_order_beats_page_order():
    """Pages recorded out of address order still produce slot-ordered
    (contiguous) reads."""
    t = swapped_table(pages=[7, 3, 5], slots=[102, 100, 101])
    groups = plan_block_reads(t, np.array([7, 3, 5]), max_batch=8)
    assert len(groups) == 1
    assert list(groups[0].slots) == [100, 101, 102]
