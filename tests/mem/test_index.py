"""PageIndex: epoch invalidation, caching and view correctness.

Two layers of coverage:

* a unit suite for the epoch contract — which mutators bump, which
  deliberately do not, cache-hit identity of returned arrays, and the
  scan-mode switch;
* a randomized property test interleaving every mutator and asserting,
  after each step, that every cached view equals the answer recomputed
  from the raw arrays with ``np.flatnonzero``.
"""

import numpy as np
import pytest

from repro.mem import index as index_mode
from repro.mem.index import PageIndex, index_enabled, set_index_enabled
from repro.mem.page_table import PageTable


@pytest.fixture(autouse=True)
def _restore_index_mode():
    yield
    set_index_enabled(True)


def fresh_views(t: PageTable) -> dict:
    """Reference answers recomputed from the raw arrays."""
    return {
        "resident": np.flatnonzero(t.present),
        "dirty_resident": np.flatnonzero(
            t.present & (t.dirty | (t.swap_slot < 0))
        ),
        "clean_resident": np.flatnonzero(
            t.present & ~t.dirty & (t.swap_slot >= 0)
        ),
        "touched": np.flatnonzero(t.last_ref > -np.inf),
    }


def assert_views_match(t: PageTable) -> None:
    ref = fresh_views(t)
    np.testing.assert_array_equal(t.index.resident_pages(), ref["resident"])
    np.testing.assert_array_equal(
        t.index.dirty_resident_pages(), ref["dirty_resident"]
    )
    np.testing.assert_array_equal(
        t.index.clean_resident_pages(), ref["clean_resident"]
    )
    np.testing.assert_array_equal(t.index.touched_pages(), ref["touched"])
    assert t.index.touched_count() == ref["touched"].size
    res, ages = t.index.candidates()
    np.testing.assert_array_equal(res, ref["resident"])
    np.testing.assert_array_equal(ages, t.last_ref[ref["resident"]])
    assert t.resident_count == ref["resident"].size


# ---------------------------------------------------------------------------
# epoch contract
# ---------------------------------------------------------------------------
def test_mutators_bump_epoch():
    t = PageTable(pid=1, num_pages=32)
    pages = np.arange(4)
    for mutate in (
        lambda: t.make_resident(pages),
        lambda: t.record_access(pages, 1.0, dirty=True),
        lambda: t.set_last_ref(pages, 2.0),
        lambda: t.assign_slots(pages, np.arange(4) + 100),
        lambda: t.mark_clean(pages),
        lambda: t.release_slots(pages[:2]),
        lambda: t.assign_slots(pages, np.arange(4) + 100),
        lambda: t.evict(pages),
    ):
        before = t.epoch
        mutate()
        assert t.epoch > before, mutate


def test_empty_mutations_do_not_bump():
    t = PageTable(pid=1, num_pages=16)
    empty = np.empty(0, dtype=np.int64)
    before = t.epoch
    t.make_resident(empty)
    t.record_access(empty, 1.0)
    t.set_last_ref(empty, 1.0)
    t.evict(empty)
    t.mark_clean(empty)
    t.assign_slots(empty, empty)
    t.release_slots(empty)
    assert t.epoch == before


def test_clear_referenced_does_not_bump():
    """Reference bits feed no cached view; clock sweeps must stay free."""
    t = PageTable(pid=1, num_pages=16)
    t.make_resident(np.arange(8))
    before = t.epoch
    t.clear_referenced()
    t.clear_referenced(np.arange(4))
    t.referenced[:2] = True  # direct writes are part of the contract too
    assert t.epoch == before


def test_cache_hit_returns_same_array():
    """Between mutations the views are cached objects, not rescans."""
    t = PageTable(pid=1, num_pages=64)
    t.make_resident(np.arange(10))
    a = t.index.resident_pages()
    b = t.index.resident_pages()
    assert a is b
    res1, ages1 = t.index.candidates()
    res2, ages2 = t.index.candidates()
    assert res1 is res2 and ages1 is ages2
    t.set_last_ref(np.arange(5), 7.0)  # bump
    assert t.index.resident_pages() is not a


def test_stale_cache_recomputed_after_mutation():
    t = PageTable(pid=1, num_pages=64)
    t.make_resident(np.arange(10))
    np.testing.assert_array_equal(t.index.resident_pages(), np.arange(10))
    t.evict(np.arange(5))
    np.testing.assert_array_equal(
        t.index.resident_pages(), np.arange(5, 10)
    )
    assert_views_match(t)


def test_invalidate_forces_recompute():
    t = PageTable(pid=1, num_pages=16)
    t.make_resident(np.arange(4))
    a = t.index.resident_pages()
    t.index.invalidate()
    b = t.index.resident_pages()
    assert a is not b
    np.testing.assert_array_equal(a, b)


def test_scan_mode_disables_caching():
    t = PageTable(pid=1, num_pages=32)
    t.make_resident(np.arange(6))
    set_index_enabled(False)
    assert not index_enabled()
    a = t.index.resident_pages()
    b = t.index.resident_pages()
    assert a is not b  # recomputed every call
    np.testing.assert_array_equal(a, b)
    assert t.resident_count == 6  # count_nonzero fallback
    assert_views_match(t)
    set_index_enabled(True)
    assert index_enabled()


def test_scan_and_indexed_views_agree():
    t = PageTable(pid=1, num_pages=64)
    t.make_resident(np.arange(20))
    t.assign_slots(np.arange(10), np.arange(10) + 500)
    t.record_access(np.arange(5), 3.0, dirty=True)
    indexed = {
        "resident": t.index.resident_pages().copy(),
        "dirty": t.index.dirty_resident_pages().copy(),
        "clean": t.index.clean_resident_pages().copy(),
    }
    set_index_enabled(False)
    np.testing.assert_array_equal(t.index.resident_pages(),
                                  indexed["resident"])
    np.testing.assert_array_equal(t.index.dirty_resident_pages(),
                                  indexed["dirty"])
    np.testing.assert_array_equal(t.index.clean_resident_pages(),
                                  indexed["clean"])


def test_resident_count_tracks_invariants():
    t = PageTable(pid=1, num_pages=32)
    t.make_resident(np.arange(12))
    t.check_invariants()
    t.assign_slots(np.arange(12), np.arange(12) + 50)
    t.evict(np.arange(4))
    t.check_invariants()
    assert t.resident_count == 8


def test_index_repr_smoke():
    t = PageTable(pid=3, num_pages=8)
    assert "pid=3" in repr(t.index)


# ---------------------------------------------------------------------------
# randomized interleave property test
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("scan_mode", [False, True])
def test_random_mutator_interleave(seed, scan_mode):
    """Every view matches a fresh flatnonzero recompute after every
    mutation, under a random interleaving of all mutators."""
    rng = np.random.default_rng(seed)
    num_pages = 256
    t = PageTable(pid=1, num_pages=num_pages)
    set_index_enabled(not scan_mode)
    next_slot = 0
    now = 0.0

    def sample(mask):
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return np.empty(0, dtype=np.int64)
        k = int(rng.integers(1, idx.size + 1))
        return np.sort(rng.choice(idx, size=k, replace=False))

    for step in range(300):
        now += 1.0
        op = rng.integers(0, 6)
        if op == 0:  # make_resident absent pages
            pages = sample(~t.present)
            t.make_resident(pages)
        elif op == 1:  # evict residents (assign slots to dirty ones first)
            pages = sample(t.present)
            need = pages[t.swap_slot[pages] < 0]
            if need.size:
                t.assign_slots(
                    need, np.arange(next_slot, next_slot + need.size)
                )
                next_slot += need.size
            t.evict(pages)
        elif op == 2:  # record_access on residents
            pages = sample(t.present)
            if pages.size:
                dirty = rng.random(pages.size) < 0.5
                t.record_access(pages, now, dirty)
        elif op == 3:  # fault-time reference stamp
            pages = sample(t.present)
            t.set_last_ref(pages, now)
        elif op == 4:  # background write-back completes
            pages = sample(t.present & t.dirty)
            if pages.size:
                need = pages[t.swap_slot[pages] < 0]
                if need.size:
                    t.assign_slots(
                        need, np.arange(next_slot, next_slot + need.size)
                    )
                    next_slot += need.size
                t.mark_clean(pages)
        else:  # clock sweep (no epoch bump) mixed into the interleave
            t.clear_referenced()
        # read views in random order so caches fill in varied states
        if rng.random() < 0.5:
            t.index.candidates()
        assert_views_match(t)
        t.check_invariants()
