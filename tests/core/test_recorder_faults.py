"""Record loss/corruption and the adaptive page-in fallback (§3.3)."""

import numpy as np
import pytest

from repro.cluster import Node
from repro.core.recorder import PageRecorder
from repro.faults import RecordCorrupted
from repro.sim import Environment


class ScriptedRecordFaults:
    """Duck-typed plan that loses/corrupts a fixed number of batches."""

    def __init__(self, lose=0, corrupt=0):
        self.lose = lose
        self.corrupt = corrupt

    def record_lost(self, owner):
        if self.lose > 0:
            self.lose -= 1
            return True
        return False

    def record_corrupt(self, owner):
        if self.corrupt > 0:
            self.corrupt -= 1
            return True
        return False


def test_clean_recorder_round_trips_with_checksum():
    rec = PageRecorder()
    rec.record(1, np.arange(10, 20))
    rec.record(1, np.arange(50, 55))
    got = rec.take(1)
    assert got.tolist() == list(range(10, 20)) + list(range(50, 55))
    # record is consumed; a fresh take is empty and checksum-clean
    assert rec.take(1).size == 0


def test_lost_batch_simply_missing():
    rec = PageRecorder(faults=ScriptedRecordFaults(lose=1))
    rec.record(1, np.arange(10, 20))   # lost
    rec.record(1, np.arange(50, 55))   # survives
    assert rec.records_lost == 1
    got = rec.take(1)  # loss is silent: the record stays consistent
    assert got.tolist() == list(range(50, 55))


def test_corrupt_batch_detected_at_take():
    rec = PageRecorder(faults=ScriptedRecordFaults(corrupt=1),
                       owner="node0.vmm")
    rec.record(1, np.arange(10, 20))
    assert rec.records_corrupted == 1
    with pytest.raises(RecordCorrupted, match="node0.vmm"):
        rec.take(1)
    # the corrupt record was consumed: next take is clean and empty
    assert rec.take(1).size == 0


def test_corruption_isolated_per_pid():
    rec = PageRecorder(faults=ScriptedRecordFaults(corrupt=1))
    rec.record(1, np.arange(10, 20))   # corrupted
    rec.record(2, np.arange(30, 35))   # clean
    with pytest.raises(RecordCorrupted):
        rec.take(1)
    assert rec.take(2).tolist() == list(range(30, 35))


def test_clear_resets_checksum_state():
    rec = PageRecorder(faults=ScriptedRecordFaults(corrupt=1))
    rec.record(1, np.arange(10, 20))   # corrupted
    rec.clear(1)                       # process exit discards it
    rec.record(1, np.arange(30, 40))   # fresh, clean record
    assert rec.take(1).tolist() == list(range(30, 40))


def test_adaptive_page_in_falls_back_on_corruption():
    env = Environment()
    node = Node.build(env, "n0", 8.0, "ai")
    ap = node.adaptive
    node.vmm.register_process(1, 256)
    ap.recorder.faults = ScriptedRecordFaults(corrupt=1)
    ap.recorder.record(1, np.arange(0, 32))

    def driver():
        yield from ap.adaptive_page_in(1, -1, 64)

    env.process(driver())
    env.run()
    # the corrupt record was dropped, page-in degraded to demand paging
    assert ap.ai_fallbacks == 1
    assert node.vmm.tables[1].resident_pages().size == 0
