"""Unit + property tests for the page recorder (§3.3)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PageRecorder, PageRun
from repro.core.recorder import compress_runs


def test_compress_contiguous():
    runs = compress_runs(np.array([5, 6, 7, 8]))
    assert runs == [PageRun(5, 4)]


def test_compress_with_gaps():
    runs = compress_runs(np.array([1, 2, 10, 11, 12, 20]))
    assert runs == [PageRun(1, 2), PageRun(10, 3), PageRun(20, 1)]


def test_compress_unsorted_input():
    runs = compress_runs(np.array([7, 5, 6]))
    assert runs == [PageRun(5, 3)]


def test_compress_empty():
    assert compress_runs(np.array([], dtype=np.int64)) == []


def test_pagerun_expands():
    assert list(PageRun(3, 4).pages()) == [3, 4, 5, 6]


def test_record_and_take_preserves_flush_order():
    r = PageRecorder()
    r.record(1, np.array([100, 101]))   # first flush batch
    r.record(1, np.array([0, 1, 2]))    # second flush batch
    taken = r.take(1)
    assert list(taken) == [100, 101, 0, 1, 2]
    # record cleared after take
    assert r.take(1).size == 0


def test_records_are_per_pid():
    r = PageRecorder()
    r.record(1, np.array([1]))
    r.record(2, np.array([2]))
    assert list(r.take(1)) == [1]
    assert list(r.take(2)) == [2]


def test_empty_record_ignored():
    r = PageRecorder()
    r.record(1, np.array([], dtype=np.int64))
    assert r.record_entries(1) == 0


def test_peek_does_not_clear():
    r = PageRecorder()
    r.record(1, np.arange(4))
    assert r.peek(1) == [PageRun(0, 4)]
    assert r.recorded_pages(1) == 4
    assert r.take(1).size == 4


def test_clear():
    r = PageRecorder()
    r.record(1, np.arange(4))
    r.clear(1)
    assert r.take(1).size == 0


def test_run_compression_saves_entries():
    """The §3.3 point: contiguous flushes need few (base, offset) records."""
    r = PageRecorder()
    r.record(1, np.arange(0, 1024))  # one contiguous flush
    assert r.record_entries(1) == 1
    assert r.recorded_pages(1) == 1024


@given(st.lists(st.integers(0, 500), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_property_take_returns_recorded_set(pages):
    """take() returns exactly the set of recorded pages."""
    r = PageRecorder()
    arr = np.asarray(pages, dtype=np.int64)
    r.record(7, arr)
    taken = r.take(7)
    assert set(taken.tolist()) == set(pages)
    # runs within one batch never overlap
    assert len(np.unique(taken)) == taken.size


@given(st.lists(st.lists(st.integers(0, 200), min_size=1, max_size=20),
                min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_property_multibatch_union(batches):
    """Across batches the union is preserved (duplicates allowed)."""
    r = PageRecorder()
    expect = set()
    for b in batches:
        r.record(3, np.asarray(b, dtype=np.int64))
        expect.update(b)
    taken = r.take(3)
    assert set(taken.tolist()) == expect
