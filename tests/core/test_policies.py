"""Unit tests for policy parsing and notation."""

import pytest

from repro.core import PAPER_POLICIES, PagingPolicy


def test_lru_aliases():
    for spec in ("lru", "original", "none", "", "LRU"):
        p = PagingPolicy.parse(spec)
        assert p.is_baseline
        assert p.name == "lru"


def test_parse_single_mechanisms():
    assert PagingPolicy.parse("so").so
    assert PagingPolicy.parse("ao").ao
    assert PagingPolicy.parse("ai").ai
    assert PagingPolicy.parse("bg").bg


def test_parse_combination_order_insensitive():
    a = PagingPolicy.parse("so/ao/ai/bg")
    b = PagingPolicy.parse("bg/ai/ao/so")
    assert a == b
    assert a.name == "so/ao/ai/bg"  # canonical order


def test_parse_unknown_mechanism():
    with pytest.raises(ValueError, match="unknown mechanism"):
        PagingPolicy.parse("so/xx")


def test_parse_repeated_mechanism():
    with pytest.raises(ValueError, match="repeated"):
        PagingPolicy.parse("so/so")


def test_name_roundtrip():
    for spec in PAPER_POLICIES:
        assert PagingPolicy.parse(spec).name == spec


def test_tunables_validation():
    with pytest.raises(ValueError):
        PagingPolicy(ao_batch=0)
    with pytest.raises(ValueError):
        PagingPolicy(bg_fraction=1.5)
    with pytest.raises(ValueError):
        PagingPolicy(bg_poll_s=0)


def test_with_tunables():
    p = PagingPolicy.parse("so/ao", ao_batch=128)
    assert p.ao_batch == 128
    q = p.with_tunables(bg_fraction=0.2)
    assert q.bg_fraction == 0.2
    assert q.so and q.ao


def test_str_is_name():
    assert str(PagingPolicy.parse("so/ai")) == "so/ai"


def test_paper_policies_cover_figure9():
    assert PAPER_POLICIES == ("lru", "ai", "so", "so/ao", "so/ao/bg",
                              "so/ao/ai/bg")
