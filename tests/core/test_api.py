"""Integration tests for the AdaptivePaging facade (§3.5 API)."""

import numpy as np
import pytest

from repro.core import AdaptivePaging, PagingPolicy
from repro.disk import Disk, DiskParams
from repro.mem import MemoryParams, VirtualMemoryManager
from repro.sim import Environment


def make_node(total_frames=256, policy="so/ao/ai/bg"):
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(env, MemoryParams(total_frames=total_frames), disk)
    ap = AdaptivePaging(vmm, policy)
    return env, disk, vmm, ap


def drive(env, gen):
    def w():
        yield from gen
    p = env.process(w())
    env.run(until=p)


def fill(env, vmm, pid, pages, dirty=True):
    drive(env, vmm.touch(pid, pages, dirty=dirty))


def test_policy_string_accepted():
    env, disk, vmm, ap = make_node(policy="so")
    assert ap.policy == PagingPolicy.parse("so")
    assert ap.selective is not None
    assert ap.aggressive is None
    assert ap.recorder is None
    assert ap.bgwriter is None


def test_baseline_installs_no_hooks():
    env, disk, vmm, ap = make_node(policy="lru")
    assert vmm.victim_selector is None
    assert vmm.on_flush is None


def test_full_policy_installs_all_hooks():
    env, disk, vmm, ap = make_node(policy="so/ao/ai/bg")
    assert vmm.victim_selector is ap.selective
    assert vmm.on_flush is not None
    assert ap.aggressive is not None
    assert ap.bgwriter is not None


def test_switch_same_pid_is_noop():
    env, disk, vmm, ap = make_node()
    vmm.register_process(1, 64)
    fill(env, vmm, 1, np.arange(10))
    before = disk.total_requests
    drive(env, ap.adaptive_page_out(1, 1))
    assert disk.total_requests == before
    assert ap.selective.out_pid is None


def test_adaptive_page_out_selective_and_aggressive():
    env, disk, vmm, ap = make_node(total_frames=256, policy="so/ao")
    vmm.register_process(1, 256)
    vmm.register_process(2, 256)
    ap.notify_scheduled(1)
    fill(env, vmm, 1, np.arange(200))
    ap.notify_descheduled(1)
    ap.notify_scheduled(2)
    # job 2 has an estimated WS of 150 pages (ws_pages given explicitly)
    drive(env, ap.adaptive_page_out(in_pid=2, out_pid=1, ws_pages=150))
    assert ap.selective.out_pid == 1
    assert vmm.frames.free >= 150
    vmm.check_invariants()


def test_working_set_estimate_from_quantum():
    env, disk, vmm, ap = make_node(policy="so/ao")
    vmm.register_process(1, 128)
    ap.notify_scheduled(1)
    fill(env, vmm, 1, np.arange(37))
    ap.notify_descheduled(1)
    assert ap.working_set_estimate(1) == 37


def test_recorder_records_only_stopped_processes():
    env, disk, vmm, ap = make_node(total_frames=128, policy="ai")
    vmm.register_process(1, 256)
    vmm.register_process(2, 256)
    ap.notify_scheduled(1)
    fill(env, vmm, 1, np.arange(100))
    ap.notify_descheduled(1)
    ap.notify_scheduled(2)
    # pid 2's faulting evicts pid 1's stopped pages -> recorded
    fill(env, vmm, 2, np.arange(100))
    assert ap.recorder.recorded_pages(1) > 0
    assert ap.recorder.recorded_pages(2) == 0


def test_adaptive_page_in_replays_record():
    env, disk, vmm, ap = make_node(total_frames=160, policy="ai")
    t1 = vmm.register_process(1, 256)
    vmm.register_process(2, 256)
    ap.notify_scheduled(1)
    fill(env, vmm, 1, np.arange(120))
    ap.notify_descheduled(1)
    ap.notify_scheduled(2)
    fill(env, vmm, 2, np.arange(120))
    ap.notify_descheduled(2)
    evicted = np.flatnonzero(~t1.present[:120])
    assert evicted.size > 0
    recorded_before = ap.recorder.recorded_pages(1)
    reads_before = disk.total_pages["read"]
    drive(env, ap.adaptive_page_in(in_pid=1, out_pid=2))
    assert disk.total_pages["read"] > reads_before
    # the record was consumed; anything recorded now stems from fresh
    # evictions performed to make room during the replay itself
    assert ap.recorder.recorded_pages(1) < recorded_before
    vmm.check_invariants()


def test_adaptive_page_in_noop_without_record():
    env, disk, vmm, ap = make_node(policy="ai")
    vmm.register_process(1, 64)
    before = disk.total_requests
    drive(env, ap.adaptive_page_in(1, 2))
    assert disk.total_requests == before


def test_adaptive_page_in_caps_at_ws_estimate():
    env, disk, vmm, ap = make_node(total_frames=200, policy="ai")
    t1 = vmm.register_process(1, 256)
    vmm.register_process(2, 256)
    ap.notify_scheduled(1)
    fill(env, vmm, 1, np.arange(150))
    ap.notify_descheduled(1)
    ap.notify_scheduled(2)
    fill(env, vmm, 2, np.arange(150))
    ap.notify_descheduled(2)
    recorded = ap.recorder.recorded_pages(1)
    assert recorded > 40
    drive(env, ap.adaptive_page_in(1, 2, ws_pages=40))
    # at most 40 pages were prefetched
    assert disk.total_pages["read"] <= 40
    vmm.check_invariants()


def test_bgwrite_start_stop_via_api():
    env, disk, vmm, ap = make_node(policy="bg")
    vmm.register_process(1, 64)
    fill(env, vmm, 1, np.arange(16))
    ap.start_bgwrite(1)
    assert ap.bgwriter.active
    env.run(until=env.now + 2.0)
    ap.stop_bgwrite()
    assert not ap.bgwriter.active
    # idempotent / safe without bg mechanism
    env2, disk2, vmm2, ap2 = make_node(policy="lru")
    ap2.start_bgwrite(1)  # no-op, no error
    ap2.stop_bgwrite()


def test_full_switch_cycle_all_mechanisms():
    """A miniature gang switch driving all four mechanisms end to end."""
    env, disk, vmm, ap = make_node(total_frames=192, policy="so/ao/ai/bg")
    t1 = vmm.register_process(1, 256)
    t2 = vmm.register_process(2, 256)

    # quantum 1: job 1 runs
    ap.notify_scheduled(1)
    fill(env, vmm, 1, np.arange(150))
    ap.start_bgwrite(1)
    env.run(until=env.now + 5.0)
    ap.stop_bgwrite()
    ap.notify_descheduled(1)

    # switch 1 -> 2
    drive(env, ap.adaptive_page_out(2, 1, ws_pages=150))
    drive(env, ap.adaptive_page_in(2, 1))
    ap.notify_scheduled(2)
    fill(env, vmm, 2, np.arange(150))
    ap.notify_descheduled(2)

    # switch 2 -> 1: job 1's flushed pages were recorded, replay them
    drive(env, ap.adaptive_page_out(1, 2))
    reads_before = disk.total_pages["read"]
    drive(env, ap.adaptive_page_in(1, 2))
    prefetched = disk.total_pages["read"] - reads_before
    assert prefetched > 0
    ap.notify_scheduled(1)
    # job 1 resumes: most of its working set is already in memory
    resident = int(t1.present[:150].sum())
    assert resident > 100
    vmm.check_invariants()
