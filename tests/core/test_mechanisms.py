"""Integration tests for the four adaptive mechanisms against the VMM."""

import numpy as np
import pytest

from repro.core import (
    AdaptivePaging,
    AggressivePageOut,
    BackgroundWriter,
    SelectivePageOut,
)
from repro.disk import Disk, DiskParams
from repro.mem import GlobalLruPolicy, MemoryParams, VirtualMemoryManager
from repro.sim import Environment


def make_node(total_frames=256):
    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(
        env, MemoryParams(total_frames=total_frames), disk
    )
    return env, disk, vmm


def drive(env, gen):
    def wrapper():
        yield from gen
    p = env.process(wrapper())
    env.run(until=p)


def fill(env, vmm, pid, pages, dirty=True):
    drive(env, vmm.touch(pid, pages, dirty=dirty))


# ---------------------------------------------------------------------------
# selective page-out
# ---------------------------------------------------------------------------

def test_selective_targets_outgoing_first():
    env, disk, vmm = make_node(total_frames=200)
    vmm.register_process(1, 256)
    vmm.register_process(2, 256)
    fill(env, vmm, 1, np.arange(80))       # outgoing (older)
    fill(env, vmm, 2, np.arange(80))       # incoming's residual (newer)
    sel = SelectivePageOut(fallback=GlobalLruPolicy())
    sel.set_outgoing(1)
    vmm.victim_selector = sel
    # pressure from pid 2 faulting more
    fill(env, vmm, 2, np.arange(80, 160))
    # pid 2's residual pages survived; pid 1 was drained
    assert vmm.tables[2].resident_count == 160
    assert vmm.tables[1].resident_count < 80
    vmm.check_invariants()


def test_selective_falls_back_when_outgoing_empty():
    env, disk, vmm = make_node(total_frames=128)
    vmm.register_process(1, 256)
    vmm.register_process(2, 256)
    fill(env, vmm, 1, np.arange(5))    # tiny outgoing
    fill(env, vmm, 2, np.arange(65))
    sel = SelectivePageOut(fallback=GlobalLruPolicy())
    sel.set_outgoing(1)
    vmm.victim_selector = sel
    fill(env, vmm, 2, np.arange(65, 130))
    # outgoing fully swapped; fallback must have evicted pid 2 pages too
    assert vmm.tables[1].resident_count == 0
    assert vmm.tables[2].resident_count < 130
    assert vmm.stats.evictions > 5
    vmm.check_invariants()


def test_selective_prevents_false_eviction():
    """Direct comparison: with selective page-out the incoming process's
    residual pages survive the fault burst; with plain LRU they do not."""
    def residual_survivors(selective):
        env, disk, vmm = make_node(total_frames=200)
        vmm.register_process(1, 256)
        vmm.register_process(2, 256)
        # A ran long ago: its residual pages are the oldest
        fill(env, vmm, 2, np.arange(60))
        fill(env, vmm, 1, np.arange(100))
        if selective:
            sel = SelectivePageOut(fallback=GlobalLruPolicy())
            sel.set_outgoing(1)
            vmm.victim_selector = sel
        # A (pid 2) is rescheduled and faults for more memory
        fill(env, vmm, 2, np.arange(60, 120))
        return int(vmm.tables[2].present[:60].sum())

    assert residual_survivors(True) > residual_survivors(False)


def test_selective_oldest_first_within_outgoing():
    env, disk, vmm = make_node()
    t = vmm.register_process(1, 64)
    fill(env, vmm, 1, np.arange(0, 10))
    fill(env, vmm, 1, np.arange(10, 20))  # newer
    sel = SelectivePageOut(fallback=GlobalLruPolicy())
    sel.set_outgoing(1)
    batches = sel(vmm.tables, count=10, cluster=32)
    victims = np.concatenate([b.pages for b in batches])
    assert set(victims) == set(range(10))  # the older half


def test_selective_respects_protect():
    env, disk, vmm = make_node()
    vmm.register_process(1, 64)
    fill(env, vmm, 1, np.arange(0, 20))
    sel = SelectivePageOut(fallback=GlobalLruPolicy())
    sel.set_outgoing(1)
    batches = sel(vmm.tables, count=20, cluster=32,
                  protect={1: np.arange(0, 5)})
    victims = np.concatenate([b.pages for b in batches])
    assert set(victims) == set(range(5, 20))


# ---------------------------------------------------------------------------
# aggressive page-out
# ---------------------------------------------------------------------------

def test_aggressive_frees_to_target():
    env, disk, vmm = make_node(total_frames=256)
    vmm.register_process(1, 256)
    fill(env, vmm, 1, np.arange(200))
    ao = AggressivePageOut(vmm, batch_pages=64)
    drive(env, ao.run(out_pid=1, target_free=150))
    assert vmm.frames.free >= 150
    vmm.check_invariants()


def test_aggressive_stops_when_outgoing_exhausted():
    env, disk, vmm = make_node(total_frames=256)
    vmm.register_process(1, 64)
    vmm.register_process(2, 256)
    fill(env, vmm, 1, np.arange(30))
    fill(env, vmm, 2, np.arange(150))
    ao = AggressivePageOut(vmm)
    drive(env, ao.run(out_pid=1, target_free=250))  # impossible target
    assert vmm.tables[1].resident_count == 0
    assert vmm.tables[2].resident_count == 150  # untouched
    vmm.check_invariants()


def test_aggressive_writes_contiguous_blocks():
    """Address-ordered block eviction produces few, large writes."""
    env, disk, vmm = make_node(total_frames=512)
    vmm.register_process(1, 512)
    fill(env, vmm, 1, np.arange(256))
    writes_before = disk.total_requests
    ao = AggressivePageOut(vmm, batch_pages=128)
    drive(env, ao.run(1, target_free=vmm.frames.free + 256))
    writes = disk.total_requests - writes_before
    assert writes == 2  # 256 pages in 2 batches
    # each write got contiguous swap slots -> exactly 1 seek each
    assert disk.total_seeks <= 2 + 1


def test_aggressive_noop_if_enough_free():
    env, disk, vmm = make_node(total_frames=256)
    vmm.register_process(1, 64)
    fill(env, vmm, 1, np.arange(10))
    ao = AggressivePageOut(vmm)
    drive(env, ao.run(1, target_free=100))
    assert vmm.tables[1].resident_count == 10  # nothing evicted


def test_aggressive_target_for_caps_at_memory():
    env, disk, vmm = make_node(total_frames=100)
    ao = AggressivePageOut(vmm)
    assert ao.target_for(10**9) == 100
    small = ao.target_for(10)
    assert small == 10 + vmm.params.freepages_high


def test_aggressive_invalid_batch():
    env, disk, vmm = make_node()
    with pytest.raises(ValueError):
        AggressivePageOut(vmm, batch_pages=0)


# ---------------------------------------------------------------------------
# background writer
# ---------------------------------------------------------------------------

def test_bgwriter_cleans_dirty_pages_keeping_them_resident():
    env, disk, vmm = make_node()
    t = vmm.register_process(1, 64)
    fill(env, vmm, 1, np.arange(32), dirty=True)
    bw = BackgroundWriter(vmm, batch_pages=16, poll_s=0.5)
    bw.start(1)
    env.run(until=env.now + 10.0)
    bw.stop()
    env.run(until=env.now + 1.0)
    assert t.resident_count == 32
    assert not t.dirty[:32].any()
    assert bw.pages_written == 32
    assert not bw.active
    vmm.check_invariants()


def test_bgwriter_stop_is_idempotent():
    env, disk, vmm = make_node()
    vmm.register_process(1, 64)
    bw = BackgroundWriter(vmm)
    bw.start(1)
    env.run(until=0.1)
    bw.stop()
    bw.stop()
    assert not bw.active


def test_bgwriter_double_start_rejected():
    env, disk, vmm = make_node()
    vmm.register_process(1, 64)
    bw = BackgroundWriter(vmm)
    bw.start(1)
    with pytest.raises(RuntimeError):
        bw.start(1)
    bw.stop()


def test_bgwriter_unknown_pid_rejected():
    env, disk, vmm = make_node()
    bw = BackgroundWriter(vmm)
    with pytest.raises(KeyError):
        bw.start(42)


def test_bgwriter_rewrites_redirtied_pages():
    """§3.4's cost: pages dirtied again after cleaning are written twice."""
    env, disk, vmm = make_node()
    vmm.register_process(1, 64)
    fill(env, vmm, 1, np.arange(16), dirty=True)
    bw = BackgroundWriter(vmm, batch_pages=16, poll_s=0.5)
    bw.start(1)
    env.run(until=env.now + 5.0)
    fill(env, vmm, 1, np.arange(16), dirty=True)  # re-dirty
    env.run(until=env.now + 5.0)
    bw.stop()
    assert bw.pages_written >= 32  # each page written twice


def test_bgwriter_writes_at_background_priority():
    env, disk, vmm = make_node()
    vmm.register_process(1, 64)
    fill(env, vmm, 1, np.arange(32), dirty=True)
    priorities = []
    orig_submit = disk.submit

    def spy(slots, op, priority=0, pid=None):
        priorities.append(priority)
        return orig_submit(slots, op, priority, pid)

    disk.submit = spy
    bw = BackgroundWriter(vmm, batch_pages=8)
    bw.start(1)
    env.run(until=env.now + 5.0)
    bw.stop()
    from repro.disk import PRIO_BACKGROUND
    assert priorities and all(p == PRIO_BACKGROUND for p in priorities)


def test_bgwriter_validation():
    env, disk, vmm = make_node()
    with pytest.raises(ValueError):
        BackgroundWriter(vmm, batch_pages=0)
    with pytest.raises(ValueError):
        BackgroundWriter(vmm, poll_s=0)
