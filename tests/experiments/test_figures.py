"""Smoke tests for every figure/table harness at tiny scale.

Each experiment module must run end to end, return its structured
record, and render without error.  The paper-shape assertions (who
wins, where the crossovers are) run at a modest scale in the benchmark
suite; here we only assert structure and the most robust directions.
"""

import pytest

from repro.experiments import (
    ablation_bgwrite,
    ablation_false_eviction,
    ablation_readahead,
    fig1_compaction,
    fig6_traces,
    fig7_serial,
    fig8_parallel,
    fig9_lu_detail,
    motivation_moreira,
)

SCALE = 0.04


def test_fig1_runs_and_adaptive_compacts():
    rec = fig1_compaction.run(scale=SCALE, quiet=True)
    assert set(rec) == {"lru", "so/ao/ai/bg"}
    assert rec["so/ao/ai/bg"]["compaction"] >= rec["lru"]["compaction"]
    assert rec["so/ao/ai/bg"]["interleave"] <= rec["lru"]["interleave"]
    assert fig1_compaction.render(rec)


def test_fig6_runs_and_renders():
    rec = fig6_traces.run(scale=0.03, quiet=True)
    assert set(rec) == set(fig6_traces.POLICIES)
    for pol, r in rec.items():
        assert r["series"]["read"].sum() >= 0
    out = fig6_traces.render(rec)
    assert "page-in" in out and "page-out" in out


def test_fig7_structure_and_direction():
    rec = fig7_serial.run(scale=SCALE, quiet=True)
    assert set(rec) == set(fig7_serial.BENCHMARKS)
    for bench, r in rec.items():
        assert r["batch_s"] > 0
        assert r["lru_s"] >= r["batch_s"] * 0.99, bench
        # the adaptive policy never does worse than the original
        assert r["adaptive_s"] <= r["lru_s"] * 1.02, bench
    assert fig7_serial.render(rec)


def test_fig8_structure(tiny_cases=(("LU", 2), ("CG", 2))):
    # run only a subset through the module-level machinery at tiny scale
    import repro.experiments.fig8_parallel as f8

    orig = f8.CASES
    f8.CASES = tuple(c for c in orig if (c[0], c[1]) in tiny_cases)
    try:
        rec = f8.run(scale=SCALE, quiet=True)
        assert set(rec) == set(tiny_cases)
        for r in rec.values():
            assert r["adaptive_s"] <= r["lru_s"] * 1.05
        assert f8.render(rec)
    finally:
        f8.CASES = orig


def test_fig9_structure():
    import repro.experiments.fig9_lu_detail as f9

    orig = f9.CONFIGS
    f9.CONFIGS = (("serial", "B", 1, 300.0),)
    try:
        rec = f9.run(scale=SCALE, quiet=True)
        per = rec["serial"]
        for pol in f9.PAPER_POLICIES:
            assert "makespan_s" in per[pol]
        # full combination beats plain lru
        assert (per["so/ao/ai/bg"]["makespan_s"]
                <= per["lru"]["makespan_s"] * 1.02)
        assert f9.render(rec)
    finally:
        f9.CONFIGS = orig


def test_motivation_less_memory_is_slower():
    rec = motivation_moreira.run(scale=0.2, quiet=True)
    assert rec["slowdown_ratio"] > 1.2
    assert motivation_moreira.render(rec)


def test_ablation_bgwrite_runs():
    rec = ablation_bgwrite.run(scale=SCALE, quiet=True)
    assert "no-bg" in rec
    assert any(k.startswith("bg@") for k in rec)
    for k, r in rec.items():
        if k.startswith("bg@"):
            assert r["makespan_s"] > 0


def test_ablation_readahead_runs():
    rec = ablation_readahead.run(scale=SCALE, quiet=True)
    assert "lru+ra16" in rec and "ai (ra16)" in rec
    # adaptive page-in is at worst comparable to the default read-ahead
    # baseline at this tiny scale (direction is asserted at benchmark
    # scale in benchmarks/test_ablation_readahead.py)
    assert (rec["ai (ra16)"]["makespan_s"]
            <= rec["lru+ra16"]["makespan_s"] * 1.10)


def test_ablation_false_eviction_selective_cuts_refaults():
    rec = ablation_false_eviction.run(scale=SCALE, quiet=True)
    assert rec["so"]["refaults"] < rec["lru"]["refaults"]
    assert ablation_false_eviction.render(rec)
