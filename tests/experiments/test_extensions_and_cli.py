"""Smoke + shape tests for extension experiments, multi-seed and CLI."""

import pytest

from repro.experiments import (
    extension_admission,
    extension_diskched,
    extension_matrix,
    extension_policies,
    extension_quantum,
    extension_scaling,
)
from repro.experiments.multi_seed import Summary, render, replicate
from repro.experiments.runner import GangConfig

SCALE = 0.04


def test_extension_quantum_structure():
    rec = extension_quantum.run(scale=SCALE, quiet=True,
                                quanta=(75.0, 300.0))
    assert 75.0 in rec and 300.0 in rec
    assert extension_quantum.render(rec)


def test_extension_policies_all_baselines():
    rec = extension_policies.run(scale=SCALE, quiet=True)
    assert set(rec) == {"global-lru", "largest-clock", "page-aging"}
    for r in rec.values():
        assert r["adaptive_s"] <= r["lru_s"] * 1.05
    assert extension_policies.render(rec)


def test_extension_scaling_small():
    rec = extension_scaling.run(scale=SCALE, quiet=True, node_counts=(2, 4))
    assert set(rec) == {2, 4}
    assert extension_scaling.render(rec)


def test_extension_diskched_disciplines_tie():
    rec = extension_diskched.run(scale=SCALE, quiet=True)
    assert set(rec) == {"fifo", "sstf", "cscan"}
    makespans = [r["lru"]["makespan_s"] for r in rec.values()]
    # synchronous paging: dispatch order barely matters
    assert max(makespans) <= min(makespans) * 1.05
    assert extension_diskched.render(rec)


def test_extension_admission_tradeoff():
    rec = extension_admission.run(scale=SCALE, quiet=True)
    ac = rec["admission (fits-only)"]
    ad = rec["gang overcommit, adaptive"]
    # admission control never pages
    assert ac["pages_read"] == 0
    # but time-sharing gives the short jobs better response
    assert ad["completions"]["short1"] < ac["completions"]["short1"]
    assert extension_admission.render(rec)


def test_extension_matrix_mixed_workload():
    rec = extension_matrix.run(scale=0.03, quiet=True)
    assert set(rec) == {"lru", "so/ao/ai/bg"}
    for r in rec.values():
        assert all(j["finished"] for j in r["jobs"])
        assert r["matrix_utilization"] == 1.0  # 3 fully packed rows
    assert (rec["so/ao/ai/bg"]["makespan_s"]
            <= rec["lru"]["makespan_s"] * 1.05)
    assert extension_matrix.render(rec)


# ---------------------------------------------------------------------------
# multi-seed replication
# ---------------------------------------------------------------------------

def test_summary_statistics():
    s = Summary.of([1.0, 2.0, 3.0])
    assert s.mean == pytest.approx(2.0)
    assert s.min == 1.0 and s.max == 3.0 and s.n == 3
    assert Summary.of([5.0]).std == 0.0
    with pytest.raises(ValueError):
        Summary.of([])


def test_replicate_runs_across_seeds():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE)
    rec = replicate(cfg, seeds=(1, 2))
    assert rec["reduction"].n == 2
    assert rec["overhead_lru"].mean >= 0
    assert render(rec, "test")
    with pytest.raises(ValueError):
        replicate(cfg, seeds=())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "admission" in out


def test_cli_run_unknown_experiment(capsys):
    from repro.__main__ import main

    assert main(["run", "fig99"]) == 2


def test_cli_run_small(capsys):
    from repro.__main__ import main

    assert main(["run", "false-eviction", "--scale", "0.04"]) == 0
    out = capsys.readouterr().out
    assert "refaults" in out


def test_cli_rejects_non_positive_jobs(capsys):
    from repro.__main__ import main

    for argv in (
        ["run", "false-eviction", "--jobs", "0"],
        ["replicate", "--jobs", "-2"],
        ["all", "--jobs", "two"],
    ):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2  # argparse usage error, at the parser
    assert "must be >= 1" in capsys.readouterr().err


def test_cli_resilience_flags_run_supervised(capsys, tmp_path, monkeypatch):
    from repro.__main__ import main

    monkeypatch.chdir(tmp_path)  # journal lands under tmp results/
    assert main(["replicate", "--bench", "LU", "--klass", "B",
                 "--seeds", "1", "2", "--scale", "0.04",
                 "--max-retries", "2", "--cell-timeout", "600"]) == 0
    out = capsys.readouterr().out
    assert "supervisor:" in out
    assert "0 quarantined" in out
    assert (tmp_path / "results" / ".sweepjournal").is_dir()


def test_cli_quarantined_sweep_fails_with_named_cells(capsys, tmp_path,
                                                      monkeypatch):
    # every attempt of every cell crashes the worker: the sweep must
    # end with a clear named-cell error and exit 1, not a KeyError
    # from deep inside the aggregation
    from repro.__main__ import main

    monkeypatch.chdir(tmp_path)
    rc = main(["replicate", "--bench", "LU", "--klass", "B",
               "--seeds", "5", "--scale", "0.04", "--max-retries", "0",
               "--chaos", "crash=1.0,seed=1"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "quarantined" in captured.err
    assert "(5, 'lru')" in captured.err
    assert "--resume" in captured.err  # recovery hint
