"""Serial-vs-parallel equivalence of the sweep experiments.

The pool's determinism contract (repro/perf/pool.py): for any ``jobs``
value the merged record is bit-for-bit identical.  Records are compared
through the same sanitised-JSON serialisation ``save_record`` uses, so
"identical" here is exactly what a reader of the exported JSON sees.
"""

import json

from repro.experiments import extension_faults, multi_seed
from repro.experiments.report_io import _sanitise
from repro.experiments.runner import GangConfig, run_cell
from repro.perf.pool import Cell, run_cells

SCALE = 0.05


def canon(record) -> str:
    return json.dumps(_sanitise(record), sort_keys=True)


def test_multi_seed_parallel_identical_to_serial():
    base = GangConfig("LU", "B", nprocs=1, scale=SCALE)
    serial = multi_seed.replicate(base, seeds=(1, 2), jobs=1)
    parallel = multi_seed.replicate(base, seeds=(1, 2), jobs=4)
    assert canon(serial) == canon(parallel)


def test_fault_injected_cells_parallel_identical_to_serial():
    # fault injection draws from a config-seeded RNG, so faulty cells
    # obey the same determinism contract as clean ones
    base = GangConfig("LU", "B", nprocs=1, scale=SCALE)
    serial = extension_faults.run(scale=SCALE, quiet=True, jobs=1)
    parallel = extension_faults.run(scale=SCALE, quiet=True, jobs=4)
    assert canon(serial) == canon(parallel)
    # the sweep actually injected something at non-zero intensity
    inj = serial["sweep"][4.0]["so/ao/ai/bg"]["fault_summary"]["injected"]
    assert sum(inj.values()) > 0


def test_cell_summaries_quarantine_nondeterminism_under_perf_key():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE)
    cells = [Cell(("a",), run_cell, {"cfg": cfg}),
             Cell(("b",), run_cell, {"cfg": cfg})]
    a, b = run_cells(cells, jobs=2).values()
    # wall-clock and RSS live only under "_perf"; everything else is a
    # pure function of the config, so two runs of the same cfg agree
    a.pop("_perf"), b.pop("_perf")
    assert canon(a) == canon(b)


def test_run_cell_summary_is_picklable_and_carries_perf_metrics():
    import pickle

    summary = run_cell(GangConfig("LU", "B", nprocs=1, scale=SCALE))
    pickle.dumps(summary)
    perf = summary["_perf"]
    assert perf["wall_s"] > 0
    assert perf["events_per_sec"] > 0
    assert perf["peak_rss_mb"] > 0
    assert summary["events_processed"] > 0
