"""Unit tests for experiment-module helpers."""

import numpy as np
import pytest

from repro.experiments.ablation_wsestimator import _ForcedWs
from repro.experiments.extension_characterization import _rank_correlation


def test_rank_correlation_perfect_and_inverse():
    assert _rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
    assert _rank_correlation([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)


def test_rank_correlation_is_rank_based():
    # wildly nonlinear but monotone -> still +1
    xs = [1.0, 2.0, 3.0, 4.0]
    ys = [1.0, 100.0, 101.0, 1e9]
    assert _rank_correlation(xs, ys) == pytest.approx(1.0)


def test_rank_correlation_degenerate():
    assert _rank_correlation([1.0], [2.0]) == 0.0


def test_forced_ws_patches_and_restores():
    import repro.core.api as api

    orig = api.AdaptivePaging.working_set_estimate
    with _ForcedWs("whole-memory"):
        assert api.AdaptivePaging.working_set_estimate is not orig
    assert api.AdaptivePaging.working_set_estimate is orig
    # restores even when the body raises
    with pytest.raises(RuntimeError):
        with _ForcedWs("oracle"):
            raise RuntimeError("boom")
    assert api.AdaptivePaging.working_set_estimate is orig


def test_forced_ws_modes_change_estimates():
    from repro.cluster import Node
    from repro.sim import Environment

    env = Environment()
    node = Node.build(env, "n0", 4.0, "so/ao")
    node.vmm.register_process(1, 123)
    ap = node.adaptive
    with _ForcedWs("oracle"):
        assert ap.working_set_estimate(1) == 123
    with _ForcedWs("whole-memory"):
        assert ap.working_set_estimate(1) == node.vmm.params.total_frames
    with _ForcedWs("estimator"):
        # falls through to the real estimator (nothing referenced yet)
        assert ap.working_set_estimate(1) == 0
