"""GangConfig construction-time validation (one test per rejection)."""

import pytest

from repro.experiments import GangConfig
from repro.faults import FaultRates


def test_valid_config_constructs():
    cfg = GangConfig("LU", "B", nprocs=2, policy="so/ao/ai/bg",
                     faults=FaultRates(disk_error_rate=0.1),
                     max_sim_s=100.0, max_events=10_000)
    assert cfg.label().startswith("LU.B")


def test_rejects_nonpositive_nprocs():
    with pytest.raises(ValueError, match="nprocs"):
        GangConfig("LU", "B", nprocs=0)


def test_rejects_nonpositive_njobs():
    with pytest.raises(ValueError, match="njobs"):
        GangConfig("LU", "B", njobs=0)


def test_rejects_nonpositive_memory():
    with pytest.raises(ValueError, match="memory_mb"):
        GangConfig("LU", "B", memory_mb=0.0)


def test_rejects_nonpositive_quantum():
    with pytest.raises(ValueError, match="quantum_s"):
        GangConfig("LU", "B", quantum_s=-5.0)


def test_rejects_nonpositive_scale():
    with pytest.raises(ValueError, match="scale"):
        GangConfig("LU", "B", scale=0.0)


def test_rejects_unknown_mode():
    with pytest.raises(ValueError, match="mode"):
        GangConfig("LU", "B", mode="preemptive")


def test_rejects_unknown_policy():
    with pytest.raises(ValueError, match="mechanism"):
        GangConfig("LU", "B", policy="so/zz")


def test_rejects_nonpositive_watchdog_limits():
    with pytest.raises(ValueError, match="max_sim_s"):
        GangConfig("LU", "B", max_sim_s=0.0)
    with pytest.raises(ValueError, match="max_events"):
        GangConfig("LU", "B", max_events=0)


def test_rejects_bad_fault_rates_via_faultrates():
    with pytest.raises(ValueError, match="probability"):
        GangConfig("LU", "B", faults=FaultRates(disk_error_rate=3.0))
