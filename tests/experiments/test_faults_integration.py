"""Runner-level fault behaviour: transparency, watchdog, partial export."""

import json
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.experiments import GangConfig, run_experiment
from repro.experiments.runner import _makespan
from repro.faults import FaultRates, WatchdogTimeout
from repro.sim import SimulationError

SCALE = 0.04


def test_zero_rates_reproduce_fault_free_run_bit_for_bit():
    base = GangConfig("CG", "B", nprocs=1, scale=SCALE,
                      policy="so/ao/ai/bg", seed=7)
    plain = run_experiment(base)
    zeroed = run_experiment(replace(base, faults=FaultRates()))
    assert plain.makespan == zeroed.makespan
    assert plain.pages_read == zeroed.pages_read
    assert plain.pages_written == zeroed.pages_written
    assert zeroed.evicted == {}
    fs = zeroed.fault_summary
    assert fs["injected"] == {}
    assert fs["disk_retries"] == 0 and fs["ai_fallbacks"] == 0


def test_unused_fault_streams_do_not_perturb_the_run():
    # batch mode never reaches the node-fault draw sites, and all other
    # rates are zero — so an *active* plan whose draws never happen must
    # still reproduce the fault-free run exactly (stream independence)
    base = GangConfig("CG", "B", nprocs=1, scale=SCALE, mode="batch", seed=7)
    plain = run_experiment(base)
    armed = run_experiment(
        replace(base, faults=FaultRates(straggler_rate=0.9, crash_rate=0.9))
    )
    assert plain.makespan == armed.makespan
    assert plain.pages_read == armed.pages_read
    assert armed.fault_summary["injected"] == {}


def test_faulty_run_completes_and_counts_responses():
    cfg = GangConfig(
        "LU", "B", nprocs=1, scale=SCALE, policy="so/ao/ai/bg", seed=3,
        faults=FaultRates(disk_error_rate=0.02, disk_latency_rate=0.05,
                          record_loss_rate=0.1, record_corruption_rate=0.1),
    )
    res = run_experiment(cfg)
    assert res.evicted == {}
    assert len(res.completions) == 2
    fs = res.fault_summary
    assert sum(fs["injected"].values()) > 0
    assert fs["disk_failed_requests"] == 0  # retries absorbed everything
    # clean run for comparison: faults cost time
    clean = run_experiment(replace(cfg, faults=FaultRates()))
    assert res.makespan > clean.makespan


def test_watchdog_names_the_stuck_jobs():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE, max_events=500)
    with pytest.raises(WatchdogTimeout, match=r"LU#\d"):
        run_experiment(cfg)


def test_watchdog_sim_time_limit():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE, max_sim_s=1.0)
    with pytest.raises(WatchdogTimeout, match="sim time"):
        run_experiment(cfg)


def test_watchdog_is_a_simulation_error():
    # callers guarding on the engine's error type also catch the watchdog
    assert issubclass(WatchdogTimeout, SimulationError)


def test_partial_record_exported_on_failure(tmp_path):
    out = tmp_path / "results" / "partial.json"
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE, max_events=500)
    with pytest.raises(WatchdogTimeout):
        run_experiment(cfg, partial_path=out)
    data = json.loads(out.read_text())
    assert data["partial"] is True
    assert "WatchdogTimeout" in data["error"]
    assert data["events_processed"] >= 500
    assert set(data["jobs"]) == {"LU#0", "LU#1"}
    assert data["fault_summary"]["jobs_evicted"] == 0
    # no stray temp file left behind
    assert list(out.parent.iterdir()) == [out]


def test_makespan_guard_names_hung_jobs():
    done = SimpleNamespace(name="ok", finished=True,
                           completed_at=10.0, failed_at=None)
    hung = SimpleNamespace(name="wedged", finished=False,
                           completed_at=None, failed_at=None)
    with pytest.raises(SimulationError, match="wedged"):
        _makespan([done, hung])
    assert _makespan([done]) == 10.0


def test_makespan_counts_evicted_jobs_at_failure_time():
    done = SimpleNamespace(name="ok", finished=True,
                           completed_at=10.0, failed_at=None)
    dead = SimpleNamespace(name="dead", finished=True,
                           completed_at=None, failed_at=25.0)
    assert _makespan([done, dead]) == 25.0
