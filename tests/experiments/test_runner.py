"""Tests for the experiment runner (small scale)."""

from dataclasses import replace

import pytest

from repro.experiments import GangConfig, RunResult, run_experiment, run_modes
from repro.metrics import overhead_fraction, paging_reduction

SCALE = 0.04  # ~14 MB of memory, sub-second runs


def test_batch_mode_runs_jobs_sequentially():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE, mode="batch")
    res = run_experiment(cfg)
    assert isinstance(res, RunResult)
    assert res.switch_count == 0
    assert len(res.completions) == 2
    times = sorted(res.completions.values())
    assert times[1] == res.makespan
    assert times[1] > times[0]


def test_gang_mode_switches():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE, policy="lru")
    res = run_experiment(cfg)
    assert res.switch_count >= 2
    assert res.pages_read > 0 and res.pages_written > 0


def test_same_seed_reproduces_exactly():
    cfg = GangConfig("CG", "B", nprocs=1, scale=SCALE, policy="so/ao/ai/bg",
                     seed=7)
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a.makespan == b.makespan
    assert a.pages_read == b.pages_read
    assert a.pages_written == b.pages_written


def test_different_seed_changes_stochastic_workload():
    base = GangConfig("CG", "B", nprocs=1, scale=SCALE, policy="lru")
    a = run_experiment(base)
    b = run_experiment(replace(base, seed=99))
    # CG's shuffled access makes paging counts seed-dependent
    assert (a.makespan, a.pages_read) != (b.makespan, b.pages_read)


def test_parallel_run_uses_all_nodes():
    cfg = GangConfig("LU", "C", nprocs=2, scale=SCALE, policy="lru")
    res = run_experiment(cfg)
    assert len(res.vmm_stats) == 2
    nodes = {e.node for e in res.collector.paging}
    assert nodes == {"node0", "node1"}


def test_run_modes_returns_batch_plus_policies():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE)
    res = run_modes(cfg, ["lru", "so"])
    assert set(res) == {"batch", "lru", "so"}
    assert res["batch"].switch_count == 0


def test_run_modes_forwards_partial_path(tmp_path):
    import json

    from repro.faults.errors import WatchdogTimeout

    out = tmp_path / "partial.json"
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE, max_events=500)
    with pytest.raises(WatchdogTimeout):
        run_modes(cfg, ["lru"], partial_path=out)
    # whichever mode tripped the watchdog left its record behind
    # (batch finishes under 500 events at this scale; the gang run
    # does not)
    data = json.loads(out.read_text())
    assert data["partial"] is True
    assert "lru" in data["label"]


def test_run_result_perf_metrics_populated():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE)
    res = run_experiment(cfg)
    assert res.events_processed > 0
    assert res.wall_s > 0
    assert res.peak_rss_mb > 0
    assert res.events_per_sec == pytest.approx(
        res.events_processed / res.wall_s
    )


def test_adaptive_policy_never_slower_at_small_scale():
    cfg = GangConfig("LU", "B", nprocs=1, scale=SCALE)
    res = run_modes(cfg, ["lru", "so/ao/ai/bg"])
    b = res["batch"].makespan
    assert res["so/ao/ai/bg"].makespan <= res["lru"].makespan
    red = paging_reduction(res["lru"].makespan,
                           res["so/ao/ai/bg"].makespan, b)
    assert red > 0.2


def test_invalid_mode_rejected():
    # validation moved to construction time (GangConfig.__post_init__)
    with pytest.raises(ValueError):
        GangConfig("LU", "B", scale=SCALE, mode="weird")


def test_invalid_njobs_rejected():
    with pytest.raises(ValueError):
        GangConfig("LU", "B", scale=SCALE, njobs=0)


def test_label():
    cfg = GangConfig("LU", "B", nprocs=2, policy="so")
    assert "LU.B" in cfg.label() and "so" in cfg.label()
