"""Smoke test for the one-table paper-vs-measured summary."""

from repro.experiments import fig_summary


def test_summary_collects_all_headline_rows():
    rec = fig_summary.run(scale=0.04, quiet=True)
    names = [r["experiment"] for r in rec["rows"]]
    # 5 serial + 8 parallel + 3 fig9 rows
    assert len(names) == 16
    assert any("Fig7 MG" in n for n in names)
    assert any("Fig8 CG.C @4" in n for n in names)
    assert any("Fig9 LU serial" in n for n in names)
    out = fig_summary.render(rec)
    assert "measured reduction" in out
    assert "delta" in out
