"""Tests for JSON record persistence and the open-system job stream."""

import numpy as np
import pytest

from repro.experiments import extension_jobstream
from repro.experiments.report_io import load_record, save_record
from repro.workloads.jobstream import (
    StreamJobSpec,
    generate_stream,
    offered_load,
)


# ---------------------------------------------------------------------------
# report_io
# ---------------------------------------------------------------------------

def test_save_load_roundtrip_with_numpy(tmp_path):
    record = {
        "scalar": np.float64(1.5),
        "integer": np.int64(7),
        "flag": np.bool_(True),
        "array": np.arange(4),
        "nested": {"x": [np.float32(2.0), "text", None]},
        42: "int-key",
    }
    path = save_record(record, tmp_path / "out" / "r.json")
    loaded = load_record(path)
    assert loaded["scalar"] == 1.5
    assert loaded["integer"] == 7
    assert loaded["flag"] is True
    assert loaded["array"] == [0, 1, 2, 3]
    assert loaded["nested"]["x"] == [2.0, "text", None]
    assert loaded["42"] == "int-key"


def test_unserialisable_leaves_marked(tmp_path):
    record = {"collector": object()}
    loaded = load_record(save_record(record, tmp_path / "r.json"))
    assert loaded["collector"].startswith("<unserialisable:")


def test_repro_objects_flattened(tmp_path):
    from repro.experiments.multi_seed import Summary

    record = {"summary": Summary.of([1.0, 2.0])}
    loaded = load_record(save_record(record, tmp_path / "r.json"))
    assert loaded["summary"]["__type__"] == "Summary"
    assert loaded["summary"]["mean"] == 1.5


# ---------------------------------------------------------------------------
# job-stream generator
# ---------------------------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        StreamJobSpec("x", -1.0, 100, 10.0, 0.5)
    with pytest.raises(ValueError):
        StreamJobSpec("x", 0.0, 0, 10.0, 0.5)
    with pytest.raises(ValueError):
        StreamJobSpec("x", 0.0, 100, 10.0, 1.5)


def test_generate_stream_shapes():
    rng = np.random.default_rng(3)
    stream = generate_stream(rng, 20, 300.0)
    assert len(stream) == 20
    arrivals = [s.arrival_s for s in stream]
    assert arrivals == sorted(arrivals)
    for s in stream:
        assert s.footprint_pages <= 330 * 256
        assert 180.0 <= s.compute_s <= 900.0
        assert 0.4 <= s.dirty_fraction <= 0.9


def test_generate_stream_reproducible():
    a = generate_stream(np.random.default_rng(9), 10, 100.0)
    b = generate_stream(np.random.default_rng(9), 10, 100.0)
    assert a == b
    c = generate_stream(np.random.default_rng(10), 10, 100.0)
    assert a != c


def test_generate_stream_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        generate_stream(rng, 0, 100.0)
    with pytest.raises(ValueError):
        generate_stream(rng, 5, 0.0)
    with pytest.raises(ValueError):
        generate_stream(rng, 5, 100.0, compute_s_range=(0.0, 1.0))


def test_offered_load():
    stream = [
        StreamJobSpec("a", 0.0, 100, 50.0, 0.5),
        StreamJobSpec("b", 100.0, 100, 50.0, 0.5),
    ]
    assert offered_load(stream) == pytest.approx(1.0)
    assert offered_load([]) == 0.0


# ---------------------------------------------------------------------------
# the open-system experiment (tiny scale)
# ---------------------------------------------------------------------------

def test_jobstream_experiment_runs_and_adaptive_not_worse():
    rec = extension_jobstream.run(scale=0.05, quiet=True, njobs=6)
    lru = rec["lru"]
    full = rec["so/ao/ai/bg"]
    assert len(lru["slowdowns"]) == 6
    assert all(s >= 1.0 for s in lru["slowdowns"])
    assert full["mean_slowdown"] <= lru["mean_slowdown"] * 1.05
    assert extension_jobstream.render(rec)
