"""Property tests for the event engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(waiter(env, d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(st.lists(st.tuples(st.floats(0.0, 50.0, allow_nan=False),
                          st.integers(0, 9)),
                min_size=2, max_size=30))
@settings(max_examples=40, deadline=None)
def test_equal_time_events_fire_in_creation_order(specs):
    """Within one timestamp, creation order is the tiebreak — always."""
    env = Environment()
    fired = []

    def waiter(env, d, tag, idx):
        yield env.timeout(d)
        fired.append((env.now, idx))

    for idx, (d, tag) in enumerate(specs):
        env.process(waiter(env, d, tag, idx))
    env.run()
    # stable sort of (time, creation index) must equal firing order
    assert fired == sorted(fired, key=lambda p: (p[0], p[1]))


@given(st.integers(1, 6), st.integers(1, 20),
       st.floats(0.1, 5.0, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_chained_processes_conserve_virtual_time(nprocs, nsteps, dt):
    """N processes each doing nsteps timeouts of dt end at nsteps*dt."""
    env = Environment()
    ends = []

    def proc(env):
        for _ in range(nsteps):
            yield env.timeout(dt)
        ends.append(env.now)

    for _ in range(nprocs):
        env.process(proc(env))
    env.run()
    assert len(ends) == nprocs
    for e in ends:
        assert abs(e - nsteps * dt) < 1e-6 * max(1.0, nsteps * dt)


@given(st.lists(st.floats(0.0, 10.0, allow_nan=False),
                min_size=1, max_size=20),
       st.floats(0.0, 12.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_run_until_horizon_is_exact(delays, horizon):
    env = Environment()
    fired = []

    def waiter(env, d):
        yield env.timeout(d)
        fired.append(d)

    for d in delays:
        env.process(waiter(env, d))
    env.run(until=horizon)
    assert env.now == horizon
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)
