"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(3.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [3.0]


def test_timeout_value_is_delivered():
    env = Environment()
    got = []

    def proc(env):
        v = yield env.timeout(1.0, value="hello")
        got.append(v)

    env.process(proc(env))
    env.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for d in (1.0, 2.0, 0.5):
            yield env.timeout(d)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0, 3.0, 3.5]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(env, name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            order.append((name, env.now))

    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "b", 1.5))
    env.run()
    # At t=3.0 both fire; b's timeout was scheduled earlier (at t=1.5 vs
    # a's at t=2.0) so b wins the tie deterministically.
    assert order == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),
        ("a", 3.0),
        ("b", 4.5),
    ]


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    ticks = []

    def proc(env):
        while True:
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(proc(env))
    env.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42
    assert env.now == 2.0


def test_run_backwards_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_process_waits_on_other_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(2.0)
        log.append("child done")
        return "payload"

    def parent(env):
        value = yield env.process(child(env))
        log.append(f"parent got {value}")

    env.process(parent(env))
    env.run()
    assert log == ["child done", "parent got payload"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env):
        got.append((yield ev))

    def firer(env):
        yield env.timeout(1.0)
        ev.succeed("go")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert got == ["go"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    def firer(env):
        yield env.timeout(1.0)
        ev.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_failure_of_awaited_child_propagates_to_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "recovered"

    p = env.process(parent(env))
    assert env.run(until=p) == "recovered"


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(10.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim_proc):
        yield env.timeout(3.0)
        victim_proc.interrupt(cause="stop now")

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    assert log == [(3.0, "stop now")]


def test_interrupted_process_can_reawait_target():
    """After an interrupt the original timeout is still valid."""
    env = Environment()
    log = []

    def victim(env):
        to = env.timeout(10.0)
        try:
            yield to
        except Interrupt:
            log.append(("interrupted", env.now))
        yield to  # resume waiting on the same timeout
        log.append(("done", env.now))

    def interrupter(env, victim_proc):
        yield env.timeout(4.0)
        victim_proc.interrupt()

    v = env.process(victim(env))
    env.process(interrupter(env, v))
    env.run()
    assert log == [("interrupted", 4.0), ("done", 10.0)]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    def late(env, target):
        yield env.timeout(5.0)
        target.interrupt()

    p = env.process(quick(env))
    env.process(late(env, p))
    with pytest.raises(SimulationError):
        env.run()


def test_self_interrupt_rejected():
    env = Environment()

    def selfish(env, box):
        box.append(env.active_process)
        try:
            box[0].interrupt()
        except SimulationError:
            return "caught"
        yield env.timeout(1)

    box = []
    p = env.process(selfish(env, box))
    assert env.run(until=p) == "caught"


def test_is_alive_transitions():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        t1, t2 = env.timeout(1.0, "a"), env.timeout(5.0, "b")
        result = yield AllOf(env, [t1, t2])
        times.append(env.now)
        assert set(result.values()) == {"a", "b"}

    env.process(proc(env))
    env.run()
    assert times == [5.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc(env):
        result = yield AnyOf(env, [env.timeout(1.0, "fast"), env.timeout(5.0)])
        times.append(env.now)
        assert "fast" in result.values()

    env.process(proc(env))
    env.run()
    assert times == [1.0]


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [])
        return result

    p = env.process(proc(env))
    assert env.run(until=p) == {}


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_same_time_events_fire_in_creation_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_daemon_timeouts_do_not_keep_run_alive():
    env = Environment()
    samples = []

    def daemonic(env):
        while True:
            samples.append(env.now)
            yield env.timeout(1.0, daemon=True)

    def worker(env):
        yield env.timeout(3.5)

    env.process(daemonic(env))
    env.process(worker(env))
    env.run()  # must terminate despite the infinite daemon loop
    assert env.now == 3.5
    assert samples == [0.0, 1.0, 2.0, 3.0]


def test_daemon_events_processed_within_bounded_run():
    env = Environment()
    ticks = []

    def daemonic(env):
        while True:
            ticks.append(env.now)
            yield env.timeout(1.0, daemon=True)

    env.process(daemonic(env))
    env.run(until=2.5)
    assert ticks == [0.0, 1.0, 2.0]


def test_run_until_event_raises_when_only_daemons_remain():
    env = Environment()

    def daemonic(env):
        while True:
            yield env.timeout(1.0, daemon=True)

    env.process(daemonic(env))
    never = env.event()
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=never)


def test_process_return_value_is_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return {"answer": 42}

    p = env.process(proc(env))
    env.run()
    assert p.value == {"answer": 42}
    assert p.ok
