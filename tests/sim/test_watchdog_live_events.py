"""Regression tests for the ``live_events`` watchdog contract.

The experiment runner's watchdog (:func:`repro.experiments.runner._drive`)
steps the simulation manually with ``while env.live_events > 0``, so the
non-daemon entry counter must stay exact through every scheduling path
the engine exposes: plain timeouts, daemon timeouts, absolute-time
events (``timeout_at``), direct ``_schedule`` calls (the disk's fused
completion triggers), interrupts, and process termination.  A drift in
either direction would make the watchdog loop spin forever or cut a
run short.
"""

import pytest

from repro.sim.engine import NORMAL, Environment, SimulationError


def test_live_events_tracks_mixed_daemon_and_normal_entries():
    env = Environment()
    assert env.live_events == 0
    env.timeout(1.0)
    env.timeout(2.0, daemon=True)
    env.timeout(3.0)
    # two non-daemon entries; the daemon timer is invisible to the count
    assert env.live_events == 2
    env.step()
    assert env.live_events == 1
    env.step()  # the daemon timer at t=2
    assert env.live_events == 1
    env.step()
    assert env.live_events == 0


def test_manual_stepping_matches_run_to_quiescence():
    """The watchdog loop must process exactly the events run() would."""

    def ticker(env, out):
        for _ in range(5):
            yield env.timeout(1.0)
            out.append(env.now)

    ran = Environment()
    out_a: list = []
    ran.process(ticker(ran, out_a))
    ran.run()

    stepped = Environment()
    out_b: list = []
    stepped.process(ticker(stepped, out_b))
    while stepped.live_events > 0:
        stepped.step()
    assert out_a == out_b
    assert ran.events_processed == stepped.events_processed
    assert ran.now == stepped.now


def test_live_events_with_timeout_at_and_direct_schedule():
    env = Environment()
    env.timeout_at(5.0)
    assert env.live_events == 1
    ev = env.event()
    ev._value = None  # pre-triggered, scheduled by hand (disk fast path)
    env._schedule(ev, NORMAL, 1.0)
    assert env.live_events == 2
    env.step()
    env.step()
    assert env.live_events == 0
    assert env.now == 5.0


def test_live_events_survives_interrupt_delivery():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except BaseException:
            pass

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("stop")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    # quiesced: the orphaned 100s timeout entry must not be counted as
    # live once processed, and nothing may go negative
    assert env.live_events >= 0
    while env.live_events > 0:  # watchdog loop must terminate
        env.step()
    assert env.live_events == 0


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()
