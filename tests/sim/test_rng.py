"""Unit tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.sim import RngStreams


def test_same_seed_same_stream_reproduces():
    a = RngStreams(seed=7).stream("workload")
    b = RngStreams(seed=7).stream("workload")
    assert np.array_equal(a.integers(0, 1000, 50), b.integers(0, 1000, 50))


def test_different_names_give_independent_streams():
    streams = RngStreams(seed=7)
    a = streams.stream("alpha").integers(0, 10**9, 20)
    b = streams.stream("beta").integers(0, 10**9, 20)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").integers(0, 10**9, 20)
    b = RngStreams(seed=2).stream("x").integers(0, 10**9, 20)
    assert not np.array_equal(a, b)


def test_stream_is_cached_not_recreated():
    streams = RngStreams(seed=3)
    s1 = streams.stream("x")
    first = s1.integers(0, 10**9, 5)
    s2 = streams.stream("x")
    assert s1 is s2
    # continuing the stream must not restart it
    second = s2.integers(0, 10**9, 5)
    assert not np.array_equal(first, second)


def test_spawn_children_are_reproducible_and_distinct():
    parent = RngStreams(seed=9)
    c1 = parent.spawn("node0")
    c2 = parent.spawn("node1")
    again = RngStreams(seed=9).spawn("node0")
    a = c1.stream("w").integers(0, 10**9, 10)
    b = c2.stream("w").integers(0, 10**9, 10)
    c = again.stream("w").integers(0, 10**9, 10)
    assert np.array_equal(a, c)
    assert not np.array_equal(a, b)


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngStreams(seed="abc")  # type: ignore[arg-type]
