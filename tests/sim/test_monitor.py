"""Tests for the periodic state sampler."""

import pytest

from repro.sim import Environment
from repro.sim.monitor import PeriodicSampler


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        PeriodicSampler(env, lambda: 0.0, interval_s=0)


def test_samples_at_fixed_interval():
    env = Environment()
    state = {"v": 0.0}

    def mutator(env):
        for i in range(5):
            yield env.timeout(1.0)
            state["v"] = float(i + 1)

    sampler = PeriodicSampler(env, lambda: state["v"], interval_s=0.5)
    env.process(mutator(env))
    env.run(until=3.0)
    sampler.stop()
    t, v = sampler.series()
    assert t[0] == 0.0
    assert t[1] == pytest.approx(0.5)
    # value observed just after each mutation step
    assert v[0] == 0.0
    assert v[2] == 1.0  # t=1.0 sample runs after the mutator's update? or before
    assert sampler.nsamples >= 6


def test_stop_is_idempotent_and_halts_sampling():
    env = Environment()
    sampler = PeriodicSampler(env, lambda: 1.0, interval_s=1.0)
    env.run(until=2.5)
    n = sampler.nsamples
    sampler.stop()
    sampler.stop()
    env.run(until=10.0)
    assert sampler.nsamples == n


def test_time_average_weighted():
    env = Environment()
    state = {"v": 10.0}

    def step(env):
        yield env.timeout(2.0)
        state["v"] = 0.0

    sampler = PeriodicSampler(env, lambda: state["v"], interval_s=1.0)
    env.process(step(env))
    env.run(until=4.0)
    sampler.stop()
    # samples: t=0,1 -> 10; t=2,3,4 -> 0  (value changes exactly at 2.0)
    avg = sampler.time_average()
    assert 4.0 <= avg <= 6.0
    assert sampler.minimum() == 0.0


def test_statistics_require_samples():
    env = Environment()
    sampler = PeriodicSampler(env, lambda: 1.0, interval_s=1.0)
    sampler.stop()
    # the initial sample only lands once the engine runs; before that,
    # statistics must refuse
    with pytest.raises(ValueError):
        sampler.time_average()


def test_free_frame_monitoring_end_to_end():
    """Sampling the frame pool across a memory-pressure run."""
    import numpy as np

    from repro.disk import Disk, DiskParams
    from repro.mem import MemoryParams, VirtualMemoryManager

    env = Environment()
    disk = Disk(env, DiskParams())
    vmm = VirtualMemoryManager(env, MemoryParams(total_frames=256), disk)
    vmm.register_process(1, 512)
    sampler = PeriodicSampler(env, lambda: vmm.frames.free, interval_s=0.01)

    def churn():
        yield from vmm.touch(1, np.arange(200), dirty=True)
        yield from vmm.touch(1, np.arange(200, 400), dirty=True)

    p = env.process(churn())
    env.run(until=p)
    sampler.stop()
    t, v = sampler.series()
    assert v[0] == 256            # all free at start
    assert v.min() < 64           # pressure drove free frames down
    # free frames never negative, never above total
    assert (v >= 0).all() and (v <= 256).all()
