"""Unit tests for Resource / PriorityResource."""

import pytest

from repro.sim import Environment, PriorityResource, Resource, SimulationError
from repro.sim.resources import hold


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_single_slot_serialises_holders():
    env = Environment()
    res = Resource(env, capacity=1)
    spans = []

    def user(env, res, name, duration):
        req = res.request()
        yield req
        start = env.now
        yield env.timeout(duration)
        res.release(req)
        spans.append((name, start, env.now))

    env.process(user(env, res, "a", 2.0))
    env.process(user(env, res, "b", 3.0))
    env.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]


def test_capacity_two_allows_parallel_holders():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def user(env, res):
        req = res.request()
        yield req
        starts.append(env.now)
        yield env.timeout(1.0)
        res.release(req)

    for _ in range(3):
        env.process(user(env, res))
    env.run()
    assert starts == [0.0, 0.0, 1.0]


def test_fifo_order_within_resource():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, name):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(1.0)
        res.release(req)

    for name in "abcd":
        env.process(user(env, res, name))
    env.run()
    assert order == list("abcd")


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        # occupy the slot so later requests must queue
        req = res.request(priority=0)
        yield req
        yield env.timeout(5.0)
        res.release(req)

    def user(env, res, name, prio, delay):
        yield env.timeout(delay)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        yield env.timeout(1.0)
        res.release(req)

    env.process(holder(env, res))
    env.process(user(env, res, "low", 10, 1.0))
    env.process(user(env, res, "high", 1, 2.0))
    env.process(user(env, res, "mid", 5, 3.0))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_ties_are_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        req = res.request()
        yield req
        yield env.timeout(2.0)
        res.release(req)

    def user(env, res, name, delay):
        yield env.timeout(delay)
        req = res.request(priority=5)
        yield req
        order.append(name)
        res.release(req)

    env.process(holder(env, res))
    env.process(user(env, res, "first", 0.5))
    env.process(user(env, res, "second", 1.0))
    env.run()
    assert order == ["first", "second"]


def test_cancel_pending_request_skips_grant():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env, res):
        req = res.request()
        yield req
        yield env.timeout(2.0)
        res.release(req)

    def canceller(env, res):
        yield env.timeout(0.5)
        req = res.request()
        yield env.timeout(0.5)
        req.cancel()

    def user(env, res):
        yield env.timeout(1.0)
        req = res.request()
        yield req
        order.append(env.now)
        res.release(req)

    env.process(holder(env, res))
    env.process(canceller(env, res))
    env.process(user(env, res))
    env.run()
    assert order == [2.0]


def test_release_ungranted_acts_as_cancel():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env, res):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)

    def abandoner(env, res):
        yield env.timeout(0.1)
        req = res.request()
        res.release(req)  # never granted
        yield env.timeout(0)

    env.process(holder(env, res))
    env.process(abandoner(env, res))
    env.run()
    assert res.in_use == 0
    assert res.queue_length == 0


def test_double_release_rejected():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    env.process(user(env, res))
    with pytest.raises(SimulationError):
        env.run()


def test_in_use_and_queue_length_track_state():
    env = Environment()
    res = Resource(env, capacity=1)
    snapshots = []

    def holder(env, res):
        req = res.request()
        yield req
        yield env.timeout(2.0)
        res.release(req)

    def waiter(env, res):
        req = res.request()
        yield req
        res.release(req)

    def observer(env, res):
        yield env.timeout(1.0)
        snapshots.append((res.in_use, res.queue_length))
        yield env.timeout(2.0)
        snapshots.append((res.in_use, res.queue_length))

    env.process(holder(env, res))
    env.process(waiter(env, res))
    env.process(observer(env, res))
    env.run()
    assert snapshots == [(1, 1), (0, 0)]


def test_hold_helper_acquires_and_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, res, name, duration):
        yield from hold(env, res, duration)
        log.append((name, env.now))

    env.process(user(env, res, "a", 1.0))
    env.process(user(env, res, "b", 1.0))
    env.run()
    assert log == [("a", 1.0), ("b", 2.0)]
    assert res.in_use == 0


def test_request_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)
        log.append((name, env.now))

    env.process(user(env, res, "a"))
    env.process(user(env, res, "b"))
    env.run()
    assert log == [("a", 1.0), ("b", 2.0)]
