"""Engine failure paths: fail propagation, double triggers, interrupts."""

import pytest

from repro.sim import AllOf, Environment, Interrupt, SimulationError


def test_failed_event_throws_into_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_failure_propagates_through_chained_processes():
    env = Environment()
    seen = []

    def inner():
        yield env.timeout(1.0)
        raise ValueError("inner died")

    def outer():
        try:
            yield env.process(inner())
        except ValueError as exc:
            seen.append(str(exc))

    env.process(outer())
    env.run()
    assert seen == ["inner died"]


def test_unhandled_failure_escalates_from_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody listened"))
    with pytest.raises(RuntimeError, match="nobody listened"):
        env.run()


def test_defused_failure_does_not_escalate():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("handled elsewhere"))
    ev.defuse()
    env.run()
    assert not ev.ok


def test_double_succeed_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_after_succeed_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("too late"))


def test_fail_requires_an_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")


def test_interrupt_during_pending_timeout():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(10.0)
            log.append("slept")
        except Interrupt as exc:
            log.append(("interrupted", env.now, exc.cause))

    proc = env.process(sleeper())

    def poker():
        yield env.timeout(1.0)
        proc.interrupt("wake up")

    env.process(poker())
    env.run()
    assert log == [("interrupted", 1.0, "wake up")]


def test_interrupted_process_can_reawait_its_target():
    env = Environment()
    log = []

    def sleeper():
        t = env.timeout(10.0)
        try:
            yield t
        except Interrupt:
            log.append(("interrupted", env.now))
        yield t  # the original timeout is still scheduled and valid
        log.append(("woke", env.now))

    proc = env.process(sleeper())

    def poker():
        yield env.timeout(1.0)
        proc.interrupt()

    env.process(poker())
    env.run()
    assert log == [("interrupted", 1.0), ("woke", 10.0)]


def test_interrupting_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    errors = []

    def selfish():
        me = env.active_process
        try:
            me.interrupt()
        except SimulationError as exc:
            errors.append(str(exc))
        yield env.timeout(0.0)

    env.process(selfish())
    env.run()
    assert len(errors) == 1


def test_all_of_fails_fast_on_constituent_failure():
    env = Environment()
    caught = []

    def bad():
        yield env.timeout(1.0)
        raise OSError("disk on fire")

    def good():
        yield env.timeout(5.0)

    def waiter():
        try:
            yield AllOf(env, [env.process(bad()), env.process(good())])
        except OSError as exc:
            caught.append((str(exc), env.now))

    env.process(waiter())
    env.run()
    # failure surfaced at t=1, without waiting for the slow sibling
    assert caught == [("disk on fire", 1.0)]
