"""Tests for the DES event tracer."""

import pytest

from repro.sim import Environment, Timeout
from repro.sim.tracing import EventTracer


def test_validation_and_double_install():
    env = Environment()
    with pytest.raises(ValueError):
        EventTracer(env, capacity=0)
    tr = EventTracer(env).install()
    with pytest.raises(RuntimeError):
        tr.install()
    tr.remove()
    tr.remove()  # idempotent


def test_records_processed_events():
    env = Environment()
    tr = EventTracer(env).install()

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    tr.remove()
    kinds = [e.kind for e in tr.entries]
    assert "Timeout" in kinds
    assert "Process" in kinds
    assert tr.total_seen == len(tr.entries)
    times = [e.time for e in tr.entries]
    assert times == sorted(times)


def test_predicate_filters():
    env = Environment()
    tr = EventTracer(env, predicate=lambda ev: isinstance(ev, Timeout))
    tr.install()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    tr.remove()
    assert all(e.kind == "Timeout" for e in tr.entries)


def test_ring_buffer_caps_entries():
    env = Environment()
    tr = EventTracer(env, capacity=5).install()

    def proc(env):
        for _ in range(20):
            yield env.timeout(0.1)

    env.process(proc(env))
    env.run()
    tr.remove()
    assert len(tr.entries) == 5
    assert tr.total_seen > 5


def test_failures_captured():
    env = Environment()
    tr = EventTracer(env).install()

    def child(env):
        yield env.timeout(1.0)
        raise KeyError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            pass

    env.process(parent(env))
    env.run()
    tr.remove()
    fails = tr.failures()
    assert fails and "KeyError" in fails[0].detail


def test_context_manager_and_render():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    with EventTracer(env) as tr:
        env.process(proc(env))
        env.run()
        out = tr.render(5)
    assert not tr.installed
    assert "Timeout" in out
    empty = EventTracer(env)
    assert empty.render() == "<no events traced>"


def test_mid_run_install_takes_effect():
    # Environment.run(None) used to bind `step` once before the loop, so
    # a tracer installed from *inside* the simulation recorded nothing.
    # The loop now re-reads env.step every 64-event batch.
    env = Environment()
    tr = EventTracer(env)

    def installer(env):
        yield env.timeout(1.0)
        tr.install()

    def worker(env):
        for _ in range(300):
            yield env.timeout(0.1)

    env.process(installer(env))
    env.process(worker(env))
    env.run()
    assert tr.total_seen > 0
    assert all(e.time >= 1.0 for e in tr.entries)


def test_mid_run_remove_takes_effect():
    env = Environment()
    tr = EventTracer(env).install()

    def remover(env):
        yield env.timeout(1.0)
        tr.remove()

    def worker(env):
        for _ in range(300):
            yield env.timeout(0.1)

    env.process(remover(env))
    env.process(worker(env))
    env.run()
    assert tr.total_seen > 0
    # at most one 64-event batch can slip through after removal
    late = [e for e in tr.entries if e.time > 1.0]
    assert len(late) <= 64


def test_removed_tracer_sees_nothing_more():
    env = Environment()
    tr = EventTracer(env).install()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    tr.remove()
    n = tr.total_seen
    env.process(proc(env))
    env.run()
    assert tr.total_seen == n
